"""Number trees and the recursion-tree decomposition of App. D.1.

The proof of Thm. 5.9 decomposes the terminating traces of a recursive
program ``mu phi x. M`` according to the *shape* of the recursion: a run that
makes ``n`` recursive calls, the ``i``-th of which itself makes calls shaped
like ``S_i``, corresponds to the *number tree* ``n < [S_1, ..., S_n]``.  The
appendix establishes two facts that this module makes executable:

* number trees are in bijection with the terminating runs of the shifted
  random walk started in state 1 (via relative-change runs, Lem. D.6), and
* the probability of a tree under a counting distribution -- the product of
  the distribution's mass at every node label -- lower-bounds the measure of
  the traces with that recursion shape (Prop. D.5), and the tree
  probabilities sum to 1 exactly when the walk is almost surely absorbed.

Besides the combinatorics (enumeration, the bijections, exact per-size masses
by dynamic programming) the module provides a call-tree *sampler*: a
call-by-value evaluator that runs a recursive program and records the number
tree of recursive calls actually made, so the analytic tree probabilities can
be cross-checked against simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.randomwalk.step_distribution import CountingDistribution
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    substitute,
)
from repro.symbolic.execute import RecMarker

Number = Union[Fraction, float, int]

__all__ = [
    "CallTreeBudgetExceeded",
    "CallTreeRun",
    "NumberTree",
    "absolute_run_from_relative",
    "empirical_tree_distribution",
    "enumerate_trees",
    "extinction_probability",
    "from_relative_run",
    "is_valid_relative_run",
    "leaf",
    "relative_run_from_absolute",
    "sample_call_tree",
    "termination_mass_up_to",
    "tree_mass_by_size",
    "tree_probability",
    "tree_probability_inf",
]


# ---------------------------------------------------------------------------
# Number trees.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NumberTree:
    """A number tree ``n < [S_1, ..., S_n]`` (App. D.1).

    The label of a node is the number of its children; it records how many
    recursive calls one evaluation of the body makes, and each child records
    the recursion shape of the corresponding call.
    """

    children: Tuple["NumberTree", ...] = ()

    @property
    def label(self) -> int:
        """The number of direct recursive calls at this node."""
        return len(self.children)

    @property
    def node_count(self) -> int:
        """The total number of nodes, i.e. the number of calls in the run
        (including the original, outermost call)."""
        return 1 + sum(child.node_count for child in self.children)

    @property
    def recursive_calls(self) -> int:
        """The number of *recursive* calls in the run (nodes below the root)."""
        return self.node_count - 1

    @property
    def depth(self) -> int:
        """The height of the tree: the deepest chain of pending calls."""
        if not self.children:
            return 0
        return 1 + max(child.depth for child in self.children)

    def labels(self) -> Iterator[int]:
        """Yield the label of every node in pre-order."""
        yield self.label
        for child in self.children:
            yield from child.labels()

    def to_relative_run(self) -> Tuple[int, ...]:
        """The relative-change run of the shifted random walk (App. D.1).

        ``F(n < [S_1, ..., S_n]) = (n - 1) :: F(S_1) ... F(S_n)``: resolving a
        call that spawns ``n`` new calls changes the number of pending calls
        by ``n - 1``.
        """
        run: List[int] = [self.label - 1]
        for child in self.children:
            run.extend(child.to_relative_run())
        return tuple(run)

    def to_absolute_run(self) -> Tuple[int, ...]:
        """The absolute run of the walk started in state 1 and absorbed at 0."""
        return absolute_run_from_relative(self.to_relative_run())

    def render(self) -> str:
        """A compact single-line rendering such as ``2<0, 1<0>>``."""
        if not self.children:
            return "0"
        inner = ", ".join(child.render() for child in self.children)
        return f"{self.label}<{inner}>"

    def __repr__(self) -> str:
        return f"NumberTree({self.render()})"


def leaf() -> NumberTree:
    """The simplest number tree ``0 < []`` (a run with no recursive call)."""
    return NumberTree(())


# ---------------------------------------------------------------------------
# The bijections of App. D.1 (number trees <-> runs of the random walk).
# ---------------------------------------------------------------------------


def is_valid_relative_run(run: Sequence[int]) -> bool:
    """Membership in ``Runs_R``: relative changes ``>= -1`` whose partial sums
    stay non-negative until the final step, which brings the total to ``-1``."""
    if not run:
        return False
    total = 0
    for index, change in enumerate(run):
        if change < -1:
            return False
        total += change
        is_last = index == len(run) - 1
        if is_last:
            if total != -1:
                return False
        elif total <= -1:
            return False
    return True


def from_relative_run(run: Sequence[int]) -> NumberTree:
    """The inverse of :meth:`NumberTree.to_relative_run`.

    Raises ``ValueError`` when ``run`` is not a valid element of ``Runs_R``.
    """
    if not is_valid_relative_run(run):
        raise ValueError(f"not a valid relative run: {tuple(run)!r}")
    tree, consumed = _parse_tree(list(run), 0)
    if consumed != len(run):
        raise ValueError(f"trailing entries after a complete tree: {tuple(run)!r}")
    return tree


def _parse_tree(run: List[int], position: int) -> Tuple[NumberTree, int]:
    if position >= len(run):
        raise ValueError("ran out of run entries while parsing a number tree")
    label = run[position] + 1
    if label < 0:
        raise ValueError(f"relative change below -1 at position {position}")
    position += 1
    children: List[NumberTree] = []
    for _ in range(label):
        child, position = _parse_tree(run, position)
        children.append(child)
    return NumberTree(tuple(children)), position


def absolute_run_from_relative(run: Sequence[int]) -> Tuple[int, ...]:
    """``H``: the absolute states of the walk, starting at 1 and ending at 0."""
    states = [1]
    for change in run:
        states.append(states[-1] + change)
    return tuple(states)


def relative_run_from_absolute(states: Sequence[int]) -> Tuple[int, ...]:
    """The inverse of :func:`absolute_run_from_relative`."""
    if not states or states[0] != 1:
        raise ValueError("an absolute run must start in state 1")
    return tuple(states[i + 1] - states[i] for i in range(len(states) - 1))


# ---------------------------------------------------------------------------
# Enumeration and probabilities.
# ---------------------------------------------------------------------------


def enumerate_trees(
    max_nodes: int, max_children: Optional[int] = None
) -> Iterator[NumberTree]:
    """Enumerate every number tree with at most ``max_nodes`` nodes.

    ``max_children`` optionally bounds the label of every node (useful when
    the counting distribution has bounded support, e.g. the recursive rank).
    Trees are produced in order of increasing node count.
    """
    if max_nodes < 1:
        return
    for size in range(1, max_nodes + 1):
        yield from _trees_of_size(size, max_children)


def _trees_of_size(size: int, max_children: Optional[int]) -> Iterator[NumberTree]:
    if size == 1:
        yield leaf()
        return
    # The root takes one node; distribute the remaining ``size - 1`` nodes over
    # an ordered forest of ``k`` non-empty children.
    remaining = size - 1
    max_label = remaining if max_children is None else min(remaining, max_children)
    for label in range(1, max_label + 1):
        for forest in _forests(remaining, label, max_children):
            yield NumberTree(forest)


def _forests(
    nodes: int, parts: int, max_children: Optional[int]
) -> Iterator[Tuple[NumberTree, ...]]:
    """Ordered forests of exactly ``parts`` trees using exactly ``nodes`` nodes."""
    if parts == 0:
        if nodes == 0:
            yield ()
        return
    if nodes < parts:
        return
    for first_size in range(1, nodes - parts + 2):
        for first in _trees_of_size(first_size, max_children):
            for rest in _forests(nodes - first_size, parts - 1, max_children):
                yield (first,) + rest


def tree_probability(
    tree: NumberTree, distribution: CountingDistribution
) -> Union[Fraction, float]:
    """The probability of ``tree`` under a single counting distribution:
    the product of the distribution's mass at every node label."""
    probability: Union[Fraction, float] = Fraction(1)
    for label in tree.labels():
        mass = distribution(label)
        if mass == 0:
            return Fraction(0)
        probability = probability * mass
    return probability


def tree_probability_inf(
    tree: NumberTree, family: Sequence[CountingDistribution]
) -> Union[Fraction, float]:
    """``P_inf`` of Def. D.3: at every node take the least mass over the family."""
    members = list(family)
    if not members:
        raise ValueError("the family of counting distributions must be non-empty")
    probability: Union[Fraction, float] = Fraction(1)
    for label in tree.labels():
        mass = min(member(label) for member in members)
        if mass == 0:
            return Fraction(0)
        probability = probability * mass
    return probability


def tree_mass_by_size(
    distribution: CountingDistribution, max_nodes: int
) -> List[Union[Fraction, float]]:
    """``T_k``: the total probability of all number trees with exactly ``k``
    nodes, for ``k = 1 .. max_nodes``.

    Computed by dynamic programming over ordered forests instead of explicit
    enumeration, so large ``max_nodes`` stay tractable:
    ``T_1 = s(0)`` and ``T_k = sum_n s(n) * (T * ... * T)_{k-1}`` (an ``n``-fold
    convolution of the by-size masses).
    """
    if max_nodes < 1:
        return []
    support = [n for n in distribution.support() if n >= 0]
    zero: Union[Fraction, float] = Fraction(0)
    # forest_mass[j][k] = total mass of ordered forests of j trees with k nodes.
    tree_mass: List[Union[Fraction, float]] = [zero] * (max_nodes + 1)
    tree_mass[1] = distribution(0)
    for size in range(2, max_nodes + 1):
        total: Union[Fraction, float] = zero
        for arity in support:
            if arity == 0 or arity > size - 1:
                continue
            total = total + distribution(arity) * _forest_mass(
                tree_mass, arity, size - 1
            )
        tree_mass[size] = total
    return tree_mass[1:]


def _forest_mass(
    tree_mass: List[Union[Fraction, float]], parts: int, nodes: int
) -> Union[Fraction, float]:
    """Mass of ordered forests of ``parts`` trees totalling ``nodes`` nodes."""
    zero: Union[Fraction, float] = Fraction(0)
    current: List[Union[Fraction, float]] = [zero] * (nodes + 1)
    current[0] = Fraction(1)
    for _ in range(parts):
        updated: List[Union[Fraction, float]] = [zero] * (nodes + 1)
        for have in range(nodes + 1):
            if current[have] == 0:
                continue
            for extra in range(1, nodes - have + 1):
                mass = tree_mass[extra] if extra < len(tree_mass) else zero
                if mass == 0:
                    continue
                updated[have + extra] = updated[have + extra] + current[have] * mass
        current = updated
    return current[nodes]


def termination_mass_up_to(
    distribution: CountingDistribution, max_nodes: int
) -> Union[Fraction, float]:
    """The total probability of all number trees with at most ``max_nodes``
    nodes: a certified lower bound on the absorption probability of the
    shifted walk started in state 1 (Lem. D.6)."""
    return sum(tree_mass_by_size(distribution, max_nodes), Fraction(0))


def extinction_probability(
    distribution: CountingDistribution,
    iterations: int = 10_000,
    tolerance: float = 1e-12,
) -> float:
    """The least fixpoint of ``q = sum_n s(n) q^n`` by Kleene iteration.

    This is the extinction probability of the branching process with offspring
    distribution ``s`` -- equivalently the probability that the shifted walk
    started in state 1 is absorbed at 0, i.e. the limit of
    :func:`termination_mass_up_to`.
    """
    support = [n for n in distribution.support() if n >= 0]
    masses = {n: float(distribution(n)) for n in support}
    q = 0.0
    for _ in range(iterations):
        updated = sum(mass * q**n for n, mass in masses.items())
        if abs(updated - q) < tolerance:
            return updated
        q = updated
    return q


# ---------------------------------------------------------------------------
# Sampling the call tree of an actual run (cross-check of Prop. D.5).
# ---------------------------------------------------------------------------


class CallTreeBudgetExceeded(Exception):
    """Raised when a sampled run exceeds its call or step budget."""


@dataclass(frozen=True)
class CallTreeRun:
    """One terminating sampled run of a recursive program."""

    value: Union[Fraction, float]
    tree: NumberTree
    steps: int


class _CallTreeEvaluator:
    """A call-by-value big-step evaluator that records the recursion tree.

    Recursive calls are evaluated by re-entering the body, so the evaluator
    observes the actual arguments and results of every call; the order of the
    children matches the order in which calls are made during the evaluation
    of the body (left to right, inner-most first), mirroring Def. D.2.
    """

    def __init__(
        self,
        fix: Fix,
        draw: Callable[[], float],
        max_calls: int,
        max_steps: int,
        registry: PrimitiveRegistry,
        max_depth: int = 200,
    ) -> None:
        self.fix = fix
        self.draw = draw
        self.max_calls = max_calls
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.registry = registry
        self.calls = 0
        self.steps = 0
        self.depth = 0

    def run(self, argument: Number) -> Tuple[Union[Fraction, float], NumberTree]:
        self.depth += 1
        if self.depth > self.max_depth:
            raise CallTreeBudgetExceeded("recursion-depth budget exceeded")
        try:
            body = substitute(
                self.fix.body,
                {self.fix.var: Numeral(argument), self.fix.fvar: RecMarker()},
            )
            children: List[NumberTree] = []
            value = self._eval(body, children)
            if not isinstance(value, Numeral):
                raise CallTreeBudgetExceeded("the body did not reduce to a numeral")
            return value.value, NumberTree(tuple(children))
        finally:
            self.depth -= 1

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise CallTreeBudgetExceeded("step budget exceeded")

    def _eval(self, term: Term, children: List[NumberTree]) -> Term:
        self._tick()
        if isinstance(term, (Numeral, Lam, Fix, RecMarker)):
            return term
        if isinstance(term, Var):
            raise CallTreeBudgetExceeded(f"free variable {term.name!r} during sampling")
        if isinstance(term, Sample):
            return Numeral(self.draw())
        if isinstance(term, App):
            fn = self._eval(term.fn, children)
            arg = self._eval(term.arg, children)
            if isinstance(fn, RecMarker):
                if not isinstance(arg, Numeral):
                    raise CallTreeBudgetExceeded("recursive call on a non-numeral")
                self.calls += 1
                if self.calls > self.max_calls:
                    raise CallTreeBudgetExceeded("call budget exceeded")
                value, subtree = self.run(arg.value)
                children.append(subtree)
                return Numeral(value)
            if isinstance(fn, Lam):
                return self._eval(substitute(fn.body, {fn.var: arg}), children)
            if isinstance(fn, Fix):
                unfolded = substitute(fn.body, {fn.var: arg, fn.fvar: fn})
                return self._eval(unfolded, children)
            raise CallTreeBudgetExceeded("application of a non-function value")
        if isinstance(term, If):
            cond = self._eval(term.cond, children)
            if not isinstance(cond, Numeral):
                raise CallTreeBudgetExceeded("conditional guard is not a numeral")
            branch = term.then if cond.value <= 0 else term.orelse
            return self._eval(branch, children)
        if isinstance(term, Prim):
            values = []
            for argument in term.args:
                evaluated = self._eval(argument, children)
                if not isinstance(evaluated, Numeral):
                    raise CallTreeBudgetExceeded("primitive argument is not a numeral")
                values.append(evaluated.value)
            primitive = self.registry[term.op]
            try:
                return Numeral(primitive(*values))
            except (ValueError, ZeroDivisionError, OverflowError) as error:
                raise CallTreeBudgetExceeded(f"primitive {term.op!r} failed: {error}")
        if isinstance(term, Score):
            argument = self._eval(term.arg, children)
            if not isinstance(argument, Numeral) or argument.value < 0:
                raise CallTreeBudgetExceeded("score failed")
            return argument
        raise CallTreeBudgetExceeded(f"cannot evaluate {term!r}")


def sample_call_tree(
    fix: Fix,
    argument: Number,
    rng: Optional[random.Random] = None,
    max_calls: int = 10_000,
    max_steps: int = 200_000,
    max_depth: int = 200,
    registry: Optional[PrimitiveRegistry] = None,
) -> Optional[CallTreeRun]:
    """Sample one run of ``(mu phi x. M) argument`` and return its call tree.

    Returns ``None`` when the run exceeds its call, step or recursion-depth
    budgets (treated as non-terminating by the callers)."""
    rng = rng or random.Random(0)
    evaluator = _CallTreeEvaluator(
        fix,
        rng.random,
        max_calls,
        max_steps,
        registry or default_registry(),
        max_depth=max_depth,
    )
    try:
        value, tree = evaluator.run(argument)
    except (CallTreeBudgetExceeded, RecursionError):
        return None
    return CallTreeRun(value=value, tree=tree, steps=evaluator.steps)


def empirical_tree_distribution(
    fix: Fix,
    argument: Number,
    runs: int = 2_000,
    seed: int = 0,
    max_calls: int = 10_000,
    max_steps: int = 200_000,
    registry: Optional[PrimitiveRegistry] = None,
) -> Dict[NumberTree, Fraction]:
    """The empirical distribution of call trees over ``runs`` sampled runs.

    Runs that exceed their budgets contribute to the missing mass, so the
    result is a sub-distribution -- exactly the situation of Prop. D.5."""
    rng = random.Random(seed)
    counts: Dict[NumberTree, int] = {}
    for _ in range(runs):
        outcome = sample_call_tree(
            fix,
            argument,
            rng=rng,
            max_calls=max_calls,
            max_steps=max_steps,
            registry=registry,
        )
        if outcome is None:
            continue
        counts[outcome.tree] = counts.get(outcome.tree, 0) + 1
    return {tree: Fraction(count, runs) for tree, count in counts.items()}
