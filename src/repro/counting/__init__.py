"""Counting-based recursion analysis (Sec. 5 of the paper).

For a first-order recursive program ``mu phi x. M`` without nested recursion,
the analysis

1. instruments the body with the counting reduction of Fig. 5 (recursive
   calls return the unknown numeral ``star`` and are counted),
2. extracts the *counting pattern*: the distribution of the number of
   recursive-call sites exercised by one run of the body (Def. 5.7),
3. statically ensures the counting reduction never gets stuck on a guard
   containing a recursive outcome (the ``R-top`` simple type system of
   App. D.3),
4. bounds the *recursive rank* (the maximal number of call sites, App. D.4),
5. applies Thm. 5.9 / Cor. 5.13: if the shifted counting distribution drives
   an almost-surely absorbed random walk, the program is AST on every
   argument.
"""

from repro.counting.star_semantics import StarNumeral, StarRunResult, StarRunStatus, run_body
from repro.counting.pattern import (
    counting_pattern_exact,
    counting_pattern_monte_carlo,
)
from repro.counting.progress import guards_independent_of_recursion
from repro.counting.rank import recursive_rank_bound
from repro.counting.corollaries import (
    CorollaryResult,
    epsilon_recursion_avoidance,
    verify_ast_by_corollary,
)
from repro.counting.numbertrees import (
    NumberTree,
    enumerate_trees,
    extinction_probability,
    from_relative_run,
    sample_call_tree,
    termination_mass_up_to,
    tree_probability,
    tree_probability_inf,
)
from repro.counting.summary import Summary, SummaryMachine, run_body_with_summaries

__all__ = [
    "CorollaryResult",
    "NumberTree",
    "StarNumeral",
    "StarRunResult",
    "StarRunStatus",
    "Summary",
    "SummaryMachine",
    "counting_pattern_exact",
    "counting_pattern_monte_carlo",
    "enumerate_trees",
    "epsilon_recursion_avoidance",
    "extinction_probability",
    "from_relative_run",
    "guards_independent_of_recursion",
    "recursive_rank_bound",
    "run_body",
    "run_body_with_summaries",
    "sample_call_tree",
    "termination_mass_up_to",
    "tree_probability",
    "tree_probability_inf",
    "verify_ast_by_corollary",
]
