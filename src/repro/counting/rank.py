"""Upper bounds on the recursive rank (Sec. 5.4 / App. D.4).

The *recursive rank* of ``mu phi x. M`` is the maximal number of call sites
from which recursive calls are made in any single run of the body.  The paper
bounds it with a non-idempotent intersection type system (Fig. 18) in which
the cardinality of the intersection assigned to ``phi`` counts its semantic
uses.  For the first-order programs the analysis targets, that cardinality is
computed here by a syntax-directed abstract interpretation:

* conditional branches contribute the *maximum* of their counts (only one
  branch runs),
* all other term formers contribute the *sum* of their children's counts
  (call-by-value evaluates every subterm that is not behind a conditional),
* an occurrence of ``phi`` in function position contributes 1.

This matches the intersection-type count on the benchmark programs and is an
upper bound whenever the body does not duplicate ``phi`` through higher-order
plumbing (which the first-order restriction forbids).
"""

from __future__ import annotations

from repro.spcf.syntax import App, Fix, If, Lam, Numeral, Prim, Sample, Score, Term, Var


def recursive_rank_bound(fix: Fix) -> int:
    """An upper bound on the recursive rank of ``fix`` (Sec. 5.4)."""
    return _count(fix.body, fix.fvar)


def _count(term: Term, recursion_variable: str) -> int:
    if isinstance(term, Var):
        return 1 if term.name == recursion_variable else 0
    if isinstance(term, (Numeral, Sample)):
        return 0
    if isinstance(term, Lam):
        if term.var == recursion_variable:
            return 0
        return _count(term.body, recursion_variable)
    if isinstance(term, Fix):
        if recursion_variable in (term.fvar, term.var):
            return 0
        return _count(term.body, recursion_variable)
    if isinstance(term, App):
        return _count(term.fn, recursion_variable) + _count(term.arg, recursion_variable)
    if isinstance(term, If):
        guard = _count(term.cond, recursion_variable)
        branches = max(
            _count(term.then, recursion_variable),
            _count(term.orelse, recursion_variable),
        )
        return guard + branches
    if isinstance(term, Prim):
        return sum(_count(argument, recursion_variable) for argument in term.args)
    if isinstance(term, Score):
        return _count(term.arg, recursion_variable)
    # Extension leaves carry no occurrences.
    return 0
