"""Epsilon-recursion-avoidance and the Cor. 5.13 proof rule.

A program ``mu phi x. M`` is *epsilon-recursion avoiding* (Def. 5.12) when a
run of its body makes no recursive call with probability at least ``epsilon``,
for every actual argument.  Cor. 5.13: if the recursive rank is ``m`` and the
program is ``epsilon``-RA with ``m (1 - epsilon) <= 1``, then it is AST on
every argument.  The special case ``m <= 1`` recovers the zero-one law for
affine recursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Union

from repro.counting.pattern import counting_pattern_exact
from repro.counting.rank import recursive_rank_bound
from repro.spcf.syntax import Fix

Number = Union[Fraction, float, int]


@dataclass(frozen=True)
class CorollaryResult:
    """The outcome of applying Cor. 5.13."""

    verified: bool
    rank: int
    epsilon: Union[Fraction, float]
    condition_value: Union[Fraction, float]
    """``rank * (1 - epsilon)``; AST is concluded when this is at most 1."""

    arguments_checked: Sequence[Number]

    def __repr__(self) -> str:
        status = "AST" if self.verified else "not concluded"
        return (
            f"CorollaryResult({status}: rank={self.rank}, epsilon={self.epsilon}, "
            f"rank*(1-epsilon)={self.condition_value})"
        )


def epsilon_recursion_avoidance(
    fix: Fix,
    arguments: Sequence[Number] = (0, 1, 2, 5, 10),
    max_steps: int = 2_000,
) -> Union[Fraction, float]:
    """A lower bound on ``epsilon`` such that ``fix`` is ``epsilon``-RA.

    The probability of making no recursive call is evaluated exactly for each
    supplied argument and the minimum is returned.  For the paper's programs
    this probability does not depend on the argument (the accept/retry guard
    never mentions it); callers analysing argument-sensitive programs should
    supply a representative set of arguments or use the symbolic verifier in
    :mod:`repro.astcheck`, which needs no argument samples at all.
    """
    epsilon: Union[Fraction, float, None] = None
    for argument in arguments:
        pattern = counting_pattern_exact(fix, argument, max_steps=max_steps)
        zero_mass = pattern.distribution(0)
        if epsilon is None or zero_mass < epsilon:
            epsilon = zero_mass
    return epsilon if epsilon is not None else Fraction(0)


def verify_ast_by_corollary(
    fix: Fix,
    arguments: Sequence[Number] = (0, 1, 2, 5, 10),
    rank: Optional[int] = None,
    max_steps: int = 2_000,
) -> CorollaryResult:
    """Apply Cor. 5.13: AST follows from ``rank * (1 - epsilon) <= 1``."""
    rank = rank if rank is not None else recursive_rank_bound(fix)
    epsilon = epsilon_recursion_avoidance(fix, arguments=arguments, max_steps=max_steps)
    condition = rank * (1 - epsilon)
    return CorollaryResult(
        verified=condition <= 1,
        rank=rank,
        epsilon=epsilon,
        condition_value=condition,
        arguments_checked=tuple(arguments),
    )
