"""``ReproConfig``: one object for every knob the CLI, batch and daemon share.

Seven PRs accreted flags in layers -- measure-engine toggles, sweep budgets,
anytime schedules, batch fan-out, store location and backend, fault
tolerance, tracing -- each parsed ad hoc off an ``argparse.Namespace`` by a
scattering of ``_measure_options`` / ``_batch_cache`` / ``_retry_policy``
helpers.  This module consolidates that surface into a single frozen
dataclass with one precedence rule:

    explicit constructor/flag value  >  ``ReproConfig`` field default

where every field default equals the library default (``MeasureOptions()``,
``RetryPolicy()``, ...), so a flagless CLI run, a defaulted daemon and a
bare ``run_batch`` call all mean the same computation.  The same object is

* built from parsed CLI flags (:meth:`ReproConfig.from_args`) by every
  ``repro`` subcommand,
* accepted by :func:`repro.batch.runner.run_batch` as the source of its
  scheduling/cache/fault parameters, and
* the sole constructor argument of the analysis daemon
  (:class:`repro.service.daemon.AnalysisDaemon`), whose `serve` flags are
  exactly these fields.

Derived objects are built on demand -- :meth:`measure_options`,
:meth:`measure_engine`, :meth:`retry_policy`, :meth:`open_store` -- so the
config stays a plain value: hashable, comparable, loggable.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Optional, Tuple

from repro.geometry.measure import MeasureOptions

__all__ = ["ReproConfig"]


@dataclass(frozen=True)
class ReproConfig:
    """Every shared knob of a measuring command, with library defaults."""

    # -- measure engine --------------------------------------------------------
    measure_cache: bool = True
    """``--no-measure-cache`` disables the memoizing engine (slower, identical)."""

    block_memo: bool = True
    """``--no-block-memo`` memoizes whole sets without block decomposition."""

    block_sweep: bool = True
    """``--no-block-sweep`` restores the joint non-affine sweep (looser)."""

    sweep_depth: Optional[int] = None
    """``--sweep-depth``: bisection budget (None = library default)."""

    sweep_gap: Optional[Fraction] = None
    """``--sweep-gap``: stop refining at this undecided volume."""

    sweep_max_boxes: Optional[int] = None
    """``--sweep-max-boxes``: cap on boxes per sweep."""

    sweep_kernel: bool = True
    """``--no-sweep-kernel`` restores the scalar classification loop
    (bit-identical results, slower)."""

    contract: bool = False
    """``--contract`` runs the interval-Newton contractor on undecided boxes
    (tighter bounds at equal budget; result-changing, so off by default)."""

    # -- anytime schedules -----------------------------------------------------
    schedule: Optional[Tuple[int, ...]] = None
    """``--schedule d1,d2,...``: non-decreasing anytime depth schedule."""

    target_gap: Optional[Fraction] = None
    """``--target-gap``: stop a schedule early at this certified gap."""

    # -- batch / store ---------------------------------------------------------
    jobs: Optional[int] = None
    """``--jobs``: worker processes (None = the command's own default)."""

    explore_jobs: Optional[int] = None
    """``--explore-jobs``: workers for distributed anytime deepening.

    ``> 1`` shards a store-persisted exploration frontier across the
    supervised batch pool (``repro.batch.distribute``); requires
    ``cache_dir`` (the frontier lives in the store).  ``None``/``1`` keeps
    deepening single-process; either way the per-depth results are
    byte-identical.
    """

    cache_dir: Optional[str] = None
    """``--cache-dir``: the persistent store directory (None = no store)."""

    store_backend: str = "auto"
    """``--store``: 'auto' (sqlite iff store.sqlite3 exists), 'json', 'sqlite'."""

    # -- fault tolerance -------------------------------------------------------
    job_timeout: Optional[float] = None
    """``--job-timeout``: per-job wall-clock budget (forces pool execution)."""

    max_retries: Optional[int] = None
    """``--max-retries``: transient-failure re-submissions per job."""

    retry_backoff: Optional[float] = None
    """``--retry-backoff``: base of the exponential retry backoff."""

    # -- telemetry -------------------------------------------------------------
    trace: Optional[str] = None
    """``--trace PATH``: arm the structured telemetry stream."""

    # -- daemon ----------------------------------------------------------------
    session_ttl: Optional[float] = None
    """``--session-ttl``: evict daemon sessions idle longer than this
    (seconds; ``None`` = never evict on idleness)."""

    max_sessions: Optional[int] = None
    """``--max-sessions``: cap on live named daemon sessions; the least
    recently used ones are evicted past it (``None`` = unbounded)."""

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_args(cls, arguments: argparse.Namespace) -> "ReproConfig":
        """Lift parsed CLI flags into a config (absent flags keep defaults)."""

        def flag(name, default=None):
            return getattr(arguments, name, default)

        schedule = flag("schedule")
        return cls(
            measure_cache=not flag("no_measure_cache", False),
            block_memo=not flag("no_block_memo", False),
            block_sweep=not flag("no_block_sweep", False),
            sweep_depth=flag("sweep_depth"),
            sweep_gap=flag("sweep_gap"),
            sweep_max_boxes=flag("sweep_max_boxes"),
            sweep_kernel=not flag("no_sweep_kernel", False),
            contract=flag("contract", False) or False,
            schedule=tuple(schedule) if schedule else None,
            target_gap=flag("target_gap"),
            jobs=flag("jobs"),
            explore_jobs=flag("explore_jobs"),
            cache_dir=flag("cache_dir"),
            store_backend=flag("store", "auto") or "auto",
            job_timeout=flag("job_timeout"),
            max_retries=flag("max_retries"),
            retry_backoff=flag("retry_backoff"),
            trace=flag("trace"),
            session_ttl=flag("session_ttl"),
            max_sessions=flag("max_sessions"),
        )

    def with_overrides(self, **changes) -> "ReproConfig":
        return replace(self, **changes)

    # -- derived objects -------------------------------------------------------

    def measure_options(self) -> MeasureOptions:
        """The engine options these knobs select (defaults when unset)."""
        defaults = MeasureOptions()
        return MeasureOptions(
            sweep_depth=(
                defaults.sweep_depth if self.sweep_depth is None else self.sweep_depth
            ),
            block_sweep=self.block_sweep,
            sweep_target_gap=(
                defaults.sweep_target_gap if self.sweep_gap is None else self.sweep_gap
            ),
            sweep_max_boxes=self.sweep_max_boxes,
            sweep_kernel=self.sweep_kernel,
            contract=self.contract,
        )

    def measure_engine(self):
        """A fresh shared engine honouring the cache/memo/sweep knobs."""
        from repro.geometry.engine import MeasureEngine

        return MeasureEngine(
            options=self.measure_options(),
            cache_enabled=self.measure_cache,
            block_decomposition=self.block_memo,
        )

    def nondefault_engine(self) -> bool:
        """Whether any knob selects a non-default engine configuration.

        Such runs must execute inline: pool workers build default engines
        and cached job results were computed under default options.
        """
        return (
            not self.measure_cache
            or not self.block_memo
            or not self.block_sweep
            or self.sweep_depth is not None
            or self.sweep_gap is not None
            or self.sweep_max_boxes is not None
            or not self.sweep_kernel
            or self.contract
        )

    def effective_jobs(self, default: int = 1) -> int:
        """The worker count, forced to 1 by any non-default engine knob."""
        jobs = default if self.jobs is None else self.jobs
        if self.nondefault_engine():
            return 1
        return max(1, jobs)

    def effective_explore_jobs(self) -> int:
        """Workers for distributed deepening (1 = single-process).

        Forced to 1 without a store (the sharded frontier lives there) and
        under any non-default engine knob, for the same reason
        :meth:`effective_jobs` is: pool workers build default engines.
        """
        if self.explore_jobs is None or not self.cache_dir:
            return 1
        if self.nondefault_engine():
            return 1
        return max(1, self.explore_jobs)

    def retry_policy(self):
        """The retry policy the fault flags select (``None`` = defaults)."""
        from repro.batch.runner import RetryPolicy

        if self.max_retries is None and self.retry_backoff is None:
            return None
        defaults = RetryPolicy()
        return RetryPolicy(
            max_retries=(
                defaults.max_retries if self.max_retries is None else self.max_retries
            ),
            backoff_seconds=(
                defaults.backoff_seconds
                if self.retry_backoff is None
                else self.retry_backoff
            ),
        )

    def open_store(self):
        """The persistent store at ``cache_dir``, or ``None`` without one."""
        if not self.cache_dir:
            return None
        from repro.batch.store_sqlite import open_store

        return open_store(self.cache_dir, backend=self.store_backend)
