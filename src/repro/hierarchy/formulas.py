"""Executable presentations of the Pi^0_2 / Sigma^0_2 results (Thm. 3.10).

Thm. 3.10 places AST in Pi^0_2 by exhibiting, for every rational epsilon > 0,
a finite set of pairwise-compatible terminating interval traces of weight at
least ``1 - epsilon`` (the existential witness); the universal quantifier
ranges over the epsilons.  This module makes the two quantifier alternations
executable:

* :func:`lower_bound_semidecider` is the Sigma^0_1 inner procedure: given a
  rational threshold it searches interval-trace witnesses of increasing depth
  and *terminates* iff the probability of termination exceeds the threshold
  (completeness, Thm. 3.8) -- with a budget, since this reproduction must
  return;
* :class:`ASTFormula` packages the "for all epsilon, exists a witness" view:
  ``check(epsilons, budget)`` verifies finitely many instances of the
  universal quantifier and reports the witnesses found;
* :class:`PASTFormula` is the analogous Sigma^0_2 view for positive AST
  (Def. 2.2): ``exists c, for all finite witness sets, E <= c``.

These are demonstrations of the recursion-theoretic structure, not decision
procedures (none can exist: the problems are Pi^0_2- / Sigma^0_2-complete).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Union

from repro.lowerbound.engine import LowerBoundEngine
from repro.lowerbound.result import LowerBoundResult
from repro.spcf.syntax import Term

Number = Union[Fraction, float]


def lower_bound_semidecider(
    term: Term,
    threshold: Number,
    depth_schedule: Sequence[int] = (20, 40, 80, 160, 320),
    engine: Optional[LowerBoundEngine] = None,
) -> Optional[LowerBoundResult]:
    """Search for a witness that ``Pterm(term) > threshold``.

    Runs the lower-bound engine at increasing depths and returns the first
    result whose certified bound exceeds ``threshold`` (the Sigma^0_1
    semi-decision of the strict lower-bound problem); returns ``None`` when
    the depth schedule is exhausted without finding a witness.
    """
    engine = engine or LowerBoundEngine()
    for depth in depth_schedule:
        result = engine.lower_bound(term, max_steps=depth)
        if result.probability > threshold:
            return result
    return None


@dataclass(frozen=True)
class ASTWitness:
    """A witness for one instance of the universal quantifier of AST."""

    epsilon: Fraction
    result: Optional[LowerBoundResult]

    @property
    def found(self) -> bool:
        return self.result is not None


@dataclass(frozen=True)
class ASTFormula:
    """The Pi^0_2 presentation of AST: for all eps > 0 exists a witness set."""

    term: Term

    def check(
        self,
        epsilons: Sequence[Fraction] = (Fraction(1, 10), Fraction(1, 100)),
        depth_schedule: Sequence[int] = (20, 40, 80, 160),
        engine: Optional[LowerBoundEngine] = None,
    ) -> List[ASTWitness]:
        """Verify finitely many instances of the universal quantifier.

        Every returned witness certifies ``Pterm >= 1 - epsilon``; a missing
        witness is inconclusive (the search budget may simply be too small).
        """
        engine = engine or LowerBoundEngine()
        witnesses = []
        for epsilon in epsilons:
            threshold = Fraction(1) - epsilon
            result = lower_bound_semidecider(
                self.term, threshold, depth_schedule=depth_schedule, engine=engine
            )
            witnesses.append(ASTWitness(Fraction(epsilon), result))
        return witnesses

    def all_found(self, witnesses: Sequence[ASTWitness]) -> bool:
        return all(witness.found for witness in witnesses)


@dataclass(frozen=True)
class PASTFormula:
    """The Sigma^0_2 presentation of PAST for AST terms (Thm. 3.10).

    ``Eterm(M) < infinity`` iff there exists a rational ``c`` such that every
    finite set of terminating interval traces has expected-steps weight at
    most ``c``.  ``refutes(c, ...)`` searches for a counter-witness to one
    instance of the inner universal quantifier: a finite trace set whose
    expected-steps weight already exceeds ``c``.
    """

    term: Term

    def refutes(
        self,
        bound: Number,
        depth_schedule: Sequence[int] = (20, 40, 80, 160),
        engine: Optional[LowerBoundEngine] = None,
    ) -> Optional[LowerBoundResult]:
        """Search for a witness that the expected time exceeds ``bound``."""
        engine = engine or LowerBoundEngine()
        for depth in depth_schedule:
            result = engine.lower_bound(self.term, max_steps=depth)
            if result.expected_steps > bound:
                return result
        return None

    def consistent_with(
        self,
        bound: Number,
        depth_schedule: Sequence[int] = (20, 40, 80),
        engine: Optional[LowerBoundEngine] = None,
    ) -> bool:
        """True when no explored witness refutes ``Eterm <= bound``."""
        return self.refutes(bound, depth_schedule=depth_schedule, engine=engine) is None


def ast_semi_decision(
    term: Term,
    epsilon: Fraction = Fraction(1, 100),
    depth_schedule: Sequence[int] = (20, 40, 80, 160),
) -> bool:
    """Convenience wrapper: did we find a witness that ``Pterm >= 1 - epsilon``?"""
    witness = lower_bound_semidecider(term, Fraction(1) - epsilon, depth_schedule)
    return witness is not None
