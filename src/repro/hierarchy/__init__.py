"""Executable views of the arithmetic-hierarchy results (Sec. 3.4)."""

from repro.hierarchy.formulas import (
    ASTFormula,
    PASTFormula,
    ast_semi_decision,
    lower_bound_semidecider,
)

__all__ = [
    "ASTFormula",
    "PASTFormula",
    "ast_semi_decision",
    "lower_bound_semidecider",
]
