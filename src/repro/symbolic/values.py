"""Symbolic values: expressions over sample variables (App. B.5).

A symbolic value of type ``R`` is built from

* rational/float constants,
* sample variables ``a_i`` standing for the outcome of the ``i``-th
  ``sample`` statement fired along a path,
* the unknown actual argument ``(*)`` of the recursion under analysis
  (written ``ArgVal``; Sec. 6.1 replaces the actual argument by an unknown),
* the unknown outcome ``(star)`` of a recursive call (``StarVal``; Fig. 5
  replaces recursive results by the distinguished numeral ``*``),
* applications of primitive functions to symbolic values.

Symbolic values support concrete evaluation under an assignment of the sample
variables, sound interval evaluation over a box of possible assignments, and
extraction of an exact linear form when the value is affine in the sample
variables (used by the polytope volume oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple, Union

from repro.intervals.interval import Interval
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import Term

Number = Union[Fraction, float, int]


class SymVal:
    """Base class of symbolic values."""

    __slots__ = ()

    # -- structure ----------------------------------------------------------

    def variables(self) -> FrozenSet[int]:
        """Indices of the sample variables occurring in the value."""
        raise NotImplementedError

    def contains_argument(self) -> bool:
        """True iff the unknown recursion argument ``(*)`` occurs."""
        raise NotImplementedError

    def contains_star(self) -> bool:
        """True iff the unknown recursive outcome ``star`` occurs."""
        raise NotImplementedError

    def is_concrete(self) -> bool:
        """True iff the value mentions neither sample variables nor unknowns."""
        return (
            not self.variables()
            and not self.contains_argument()
            and not self.contains_star()
        )

    # -- semantics ------------------------------------------------------------

    def evaluate(
        self,
        assignment: Mapping[int, Number],
        registry: Optional[PrimitiveRegistry] = None,
        argument: Optional[Number] = None,
    ) -> Union[Fraction, float]:
        """Evaluate under an assignment of sample variables (and the argument)."""
        raise NotImplementedError

    def interval_evaluate(
        self,
        box: Mapping[int, Interval],
        registry: Optional[PrimitiveRegistry] = None,
        argument: Optional[Interval] = None,
    ) -> Interval:
        """Soundly over-approximate the range of the value over ``box``."""
        raise NotImplementedError

    def linear_form(
        self, registry: Optional[PrimitiveRegistry] = None
    ) -> Optional["LinearForm"]:
        """Return an exact affine form in the sample variables, if one exists."""
        raise NotImplementedError

    def substitute_argument(self, value: "SymVal") -> "SymVal":
        """Replace the unknown argument ``(*)`` by ``value``."""
        raise NotImplementedError


@dataclass(frozen=True)
class LinearForm:
    """An affine expression ``sum_i coeff_i * a_i + constant`` with exact coefficients."""

    coefficients: Tuple[Tuple[int, Fraction], ...]
    constant: Fraction

    @staticmethod
    def from_mapping(coefficients: Mapping[int, Fraction], constant: Fraction) -> "LinearForm":
        cleaned = tuple(
            sorted((index, value) for index, value in coefficients.items() if value != 0)
        )
        return LinearForm(cleaned, constant)

    def as_dict(self) -> Dict[int, Fraction]:
        return dict(self.coefficients)

    def evaluate(self, assignment: Mapping[int, Number]) -> Union[Fraction, float]:
        total: Union[Fraction, float] = self.constant
        for index, coefficient in self.coefficients:
            total = total + coefficient * assignment[index]
        return total

    def scale(self, factor: Fraction) -> "LinearForm":
        return LinearForm.from_mapping(
            {index: coefficient * factor for index, coefficient in self.coefficients},
            self.constant * factor,
        )

    def add(self, other: "LinearForm") -> "LinearForm":
        coefficients = dict(self.coefficients)
        for index, coefficient in other.coefficients:
            coefficients[index] = coefficients.get(index, Fraction(0)) + coefficient
        return LinearForm.from_mapping(coefficients, self.constant + other.constant)

    def negate(self) -> "LinearForm":
        return self.scale(Fraction(-1))

    def is_constant(self) -> bool:
        return not self.coefficients


@dataclass(frozen=True)
class ConstVal(SymVal):
    """A constant symbolic value."""

    value: Union[Fraction, float]

    def __init__(self, value: Number) -> None:
        if isinstance(value, int) and not isinstance(value, bool):
            value = Fraction(value)
        object.__setattr__(self, "value", value)

    def variables(self) -> FrozenSet[int]:
        return frozenset()

    def contains_argument(self) -> bool:
        return False

    def contains_star(self) -> bool:
        return False

    def evaluate(self, assignment, registry=None, argument=None):
        return self.value

    def interval_evaluate(self, box, registry=None, argument=None) -> Interval:
        return Interval.point(self.value)

    def linear_form(self, registry=None) -> Optional[LinearForm]:
        # Python floats are binary rationals, so converting them to Fraction is
        # exact; constants arising from transcendental primitives (e.g.
        # ``sig(1)``) therefore still admit an exact affine form *relative to
        # the float approximation of the constant*.
        return LinearForm((), Fraction(self.value))

    def substitute_argument(self, value: SymVal) -> SymVal:
        return self

    def __repr__(self) -> str:
        return f"ConstVal({self.value})"


@dataclass(frozen=True)
class SampleVar(SymVal):
    """The ``index``-th sample variable ``a_index``."""

    index: int

    def variables(self) -> FrozenSet[int]:
        return frozenset({self.index})

    def contains_argument(self) -> bool:
        return False

    def contains_star(self) -> bool:
        return False

    def evaluate(self, assignment, registry=None, argument=None):
        return assignment[self.index]

    def interval_evaluate(self, box, registry=None, argument=None) -> Interval:
        return box.get(self.index, Interval(0, 1))

    def linear_form(self, registry=None) -> Optional[LinearForm]:
        return LinearForm(((self.index, Fraction(1)),), Fraction(0))

    def substitute_argument(self, value: SymVal) -> SymVal:
        return self

    def __repr__(self) -> str:
        return f"a{self.index}"


class _UnknownEvaluation(Exception):
    """Raised when evaluating a value containing an unknown symbol."""


@dataclass(frozen=True)
class ArgVal(SymVal):
    """The unknown actual argument ``(*)`` of the recursion under analysis."""

    def variables(self) -> FrozenSet[int]:
        return frozenset()

    def contains_argument(self) -> bool:
        return True

    def contains_star(self) -> bool:
        return False

    def evaluate(self, assignment, registry=None, argument=None):
        if argument is None:
            raise _UnknownEvaluation("cannot evaluate the unknown argument (*)")
        return argument

    def interval_evaluate(self, box, registry=None, argument=None) -> Interval:
        if argument is None:
            raise _UnknownEvaluation("no interval supplied for the unknown argument (*)")
        return argument

    def linear_form(self, registry=None) -> Optional[LinearForm]:
        return None

    def substitute_argument(self, value: SymVal) -> SymVal:
        return value

    def __repr__(self) -> str:
        return "(*)"


@dataclass(frozen=True)
class StarVal(SymVal):
    """The unknown outcome ``star`` of a recursive call (Fig. 5)."""

    def variables(self) -> FrozenSet[int]:
        return frozenset()

    def contains_argument(self) -> bool:
        return False

    def contains_star(self) -> bool:
        return True

    def evaluate(self, assignment, registry=None, argument=None):
        raise _UnknownEvaluation("cannot evaluate the unknown recursive outcome star")

    def interval_evaluate(self, box, registry=None, argument=None) -> Interval:
        raise _UnknownEvaluation("cannot bound the unknown recursive outcome star")

    def linear_form(self, registry=None) -> Optional[LinearForm]:
        return None

    def substitute_argument(self, value: SymVal) -> SymVal:
        return self

    def __repr__(self) -> str:
        return "star"


@dataclass(frozen=True)
class PrimVal(SymVal):
    """A postponed primitive application ``op(args...)`` on symbolic values."""

    op: str
    args: Tuple[SymVal, ...]

    def __init__(self, op: str, args: Sequence[SymVal]) -> None:
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", tuple(args))

    # The structural queries below walk the value tree with explicit stacks:
    # symbolic execution of deeply recursive bodies (e.g. unrolling a nested
    # fixpoint up to the step budget) builds values thousands of nodes deep,
    # and a recursive walk would overflow the interpreter stack before the
    # execution-tree builder can report its clean out-of-budget error.

    def _walk(self):
        stack: list = [self]
        while stack:
            value = stack.pop()
            yield value
            if isinstance(value, PrimVal):
                stack.extend(value.args)

    def variables(self) -> FrozenSet[int]:
        return frozenset(
            value.index for value in self._walk() if isinstance(value, SampleVar)
        )

    def contains_argument(self) -> bool:
        return any(isinstance(value, ArgVal) for value in self._walk())

    def contains_star(self) -> bool:
        return any(isinstance(value, StarVal) for value in self._walk())

    def evaluate(self, assignment, registry=None, argument=None):
        registry = registry or default_registry()
        values = [arg.evaluate(assignment, registry, argument) for arg in self.args]
        return registry[self.op](*values)

    def interval_evaluate(self, box, registry=None, argument=None) -> Interval:
        registry = registry or default_registry()
        bounds = [
            arg.interval_evaluate(box, registry, argument).as_pair() for arg in self.args
        ]
        lo, hi = registry[self.op].on_box(*bounds)
        return Interval(lo, hi)

    def linear_form(self, registry=None) -> Optional[LinearForm]:
        registry = registry or default_registry()
        forms = [arg.linear_form(registry) for arg in self.args]
        if any(form is None for form in forms):
            return None
        if self.op == "add":
            return forms[0].add(forms[1])
        if self.op == "sub":
            return forms[0].add(forms[1].negate())
        if self.op == "neg":
            return forms[0].negate()
        if self.op == "mul":
            left, right = forms
            if left.is_constant():
                return right.scale(left.constant)
            if right.is_constant():
                return left.scale(right.constant)
            return None
        if self.op in ("min", "max", "abs") and all(form.is_constant() for form in forms):
            constants = [form.constant for form in forms]
            value = registry[self.op](*constants)
            if isinstance(value, Fraction):
                return LinearForm((), value)
        return None

    def substitute_argument(self, value: SymVal) -> SymVal:
        results: list = []
        work: list = [("visit", self)]
        while work:
            tag, item = work.pop()
            if tag == "assemble":
                count = len(item.args)
                arguments = [results.pop() for _ in range(count)]  # newest-first
                arguments.reverse()
                results.append(PrimVal(item.op, tuple(arguments)))
            elif isinstance(item, PrimVal):
                work.append(("assemble", item))
                for arg in reversed(item.args):
                    work.append(("visit", arg))
            else:
                results.append(item.substitute_argument(value))
        (substituted,) = results
        return substituted

    def __repr__(self) -> str:
        pieces: list = []
        stack: list = [self]
        while stack:
            item = stack.pop()
            if isinstance(item, str):
                pieces.append(item)
            elif isinstance(item, PrimVal):
                pieces.append(f"{item.op}(")
                stack.append(")")
                for position, arg in enumerate(reversed(item.args)):
                    stack.append(arg)
                    if position < len(item.args) - 1:
                        stack.append(", ")
            else:
                pieces.append(repr(item))
        return "".join(pieces)


def const(value: Number) -> ConstVal:
    """Build a constant symbolic value."""
    return ConstVal(value)


def sample_var(index: int) -> SampleVar:
    """Build the ``index``-th sample variable."""
    return SampleVar(index)


def simplify_prim(op: str, args: Sequence[SymVal], registry: Optional[PrimitiveRegistry] = None) -> SymVal:
    """Build ``PrimVal(op, args)``, folding it to a constant when possible."""
    registry = registry or default_registry()
    if all(isinstance(arg, ConstVal) for arg in args):
        values = [arg.value for arg in args]  # type: ignore[union-attr]
        return ConstVal(registry[op](*values))
    return PrimVal(op, tuple(args))


@dataclass(frozen=True)
class SymNumeral(Term):
    """A term-level constant of type ``R`` wrapping a symbolic value.

    This is the leaf extension used by the symbolic executors; the generic
    term traversals of :mod:`repro.spcf.syntax` treat it as a closed constant.
    """

    value: SymVal

    def __repr__(self) -> str:
        return f"SymNumeral({self.value!r})"
