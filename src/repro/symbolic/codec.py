"""JSON codec for exploration sessions (the frontier persistence layer).

An :class:`~repro.symbolic.execute.ExplorationSession` is a pure function of
its node list -- every node's breadth-first key is budget-independent, so a
suspended session can be serialized at one budget and resumed at any deeper
one, exactly as :class:`~repro.geometry.sweep.SweepFrontier` frontiers
persist across sweep budgets.  This module provides that serialization:

* :func:`encode_session` renders a session as a JSON-safe list;
* :func:`decode_session` rebuilds an equivalent session, such that
  ``decode(encode(s)).extend(d)`` is bit-identical -- path list, order,
  counts, statistics -- to ``s.extend(d)``;
* :func:`split_session` / shard encodings let a scheduler partition a
  suspended frontier into independently resumable sub-sessions.

Design notes (cited by ``docs/stores.md``):

* **Flat node table.**  Terms and symbolic values are encoded into one
  shared table of tagged nodes referencing children *by index*, with every
  child preceding its parent.  Symbolic execution builds terms and
  primitive-value chains thousands of nodes deep (one per reduction step),
  so both the encoder and the resulting JSON must not nest with term depth:
  the table keeps ``json.dumps`` recursion flat and deduplicates the
  rampant structure sharing substitution creates.
* **Exact numbers.**  Numerals use the store's tagged codec -- ``["F",
  "p/q"]`` for fractions, ``["f", float.hex()]`` for floats -- the same
  convention as the measure-cache entries, so decoding is an exact inverse
  and resumed bounds cannot drift by a ULP.
* **Counters travel with the frontier.**  The session-local counters
  (``symbolic_steps``, ``paths_resumed``, ``frontier_peak``) are part of
  the encoding: a restored session credits them to its stats sink, so a
  crash/restore cycle reports the *same* ``PerfStats`` as an uninterrupted
  run.
* **Malformed data reads as a miss.**  Like the sweep-frontier codec,
  :func:`decode_session` returns ``None`` on anything it does not
  understand (truncated lists, unknown tags, a future version): a damaged
  or foreign frontier entry costs a fresh exploration, never an error.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
)
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation
from repro.symbolic.execute import (
    ExplorationSession,
    RecMarker,
    SymbolicExplorer,
    SymbolicPath,
    _BRANCHED,
    _Configuration,
    _SessionNode,
    _STUCK,
    _SUSPENDED,
    _TERMINATED,
    _node_key,
)
from repro.symbolic.values import (
    ArgVal,
    ConstVal,
    PrimVal,
    SampleVar,
    StarVal,
    SymNumeral,
    SymVal,
)

CODEC_VERSION = 1
"""Bumped whenever the encoding changes incompatibly; decoders reject
anything else (a newer tool may own the entry)."""

__all__ = [
    "CODEC_VERSION",
    "decode_session",
    "encode_session",
    "session_counters",
    "split_session",
]


class _Malformed(Exception):
    """Internal: the encoded data cannot be decoded.  Never escapes."""


# ---------------------------------------------------------------------------
# Numbers: the exact tagged codec shared with the measure cache.
# ---------------------------------------------------------------------------


def _encode_number(value) -> list:
    if isinstance(value, Fraction):
        return ["F", str(value)]
    if isinstance(value, float):
        return ["f", value.hex()]
    raise _Malformed(f"not an SPCF number: {value!r}")


def _decode_number(encoded):
    if not isinstance(encoded, list) or len(encoded) != 2:
        raise _Malformed("bad number encoding")
    tag, text = encoded
    try:
        if tag == "F":
            return Fraction(text)
        if tag == "f":
            return float.fromhex(text)
    except (TypeError, ValueError, ZeroDivisionError):
        raise _Malformed("unparseable number") from None
    raise _Malformed(f"unknown number tag {tag!r}")


# ---------------------------------------------------------------------------
# The shared node table: terms and symbolic values, children by index.
# ---------------------------------------------------------------------------


class _Table:
    """Accumulates encoded term/value nodes, deduplicated by identity.

    Terms are immutable and (thanks to substitution) massively shared; the
    memo keys on ``id`` and retains the object itself, so an id cannot be
    recycled mid-encode.
    """

    def __init__(self) -> None:
        self.nodes: List[list] = []
        self._memo: Dict[int, Tuple[object, int]] = {}

    def index_of(self, obj) -> Optional[int]:
        record = self._memo.get(id(obj))
        return record[1] if record is not None else None

    def add(self, obj, node: list) -> int:
        index = len(self.nodes)
        self.nodes.append(node)
        self._memo[id(obj)] = (obj, index)
        return index


def _encode_into(table: _Table, root) -> int:
    """Encode a term or symbolic value into ``table``; returns its index.

    Post-order with an explicit stack: children are emitted before their
    parent, so every child reference is a smaller index -- which is also
    exactly the property the one-pass decoder relies on.
    """
    existing = table.index_of(root)
    if existing is not None:
        return existing
    work: List[Tuple[str, object]] = [("visit", root)]
    while work:
        tag, obj = work.pop()
        if tag == "assemble":
            _assemble(table, obj)
            continue
        if table.index_of(obj) is not None:
            continue
        children = _children(obj)
        if not children:
            _assemble(table, obj)
            continue
        work.append(("assemble", obj))
        for child in reversed(children):
            work.append(("visit", child))
    index = table.index_of(root)
    if index is None:  # pragma: no cover - defensive
        raise _Malformed(f"unencodable object {root!r}")
    return index


def _children(obj) -> tuple:
    if isinstance(obj, Lam):
        return (obj.body,)
    if isinstance(obj, Fix):
        return (obj.body,)
    if isinstance(obj, App):
        return (obj.fn, obj.arg)
    if isinstance(obj, If):
        return (obj.cond, obj.then, obj.orelse)
    if isinstance(obj, Prim):
        return obj.args
    if isinstance(obj, Score):
        return (obj.arg,)
    if isinstance(obj, SymNumeral):
        return (obj.value,)
    if isinstance(obj, PrimVal):
        return obj.args
    return ()


def _assemble(table: _Table, obj) -> None:
    """Emit the table node for ``obj``, whose children are already encoded."""
    if table.index_of(obj) is not None:
        return
    ref = table.index_of
    if isinstance(obj, Var):
        node = ["v", obj.name]
    elif isinstance(obj, Numeral):
        node = ["n", _encode_number(obj.value)]
    elif isinstance(obj, SymNumeral):
        node = ["sn", ref(obj.value)]
    elif isinstance(obj, Lam):
        node = ["l", obj.var, ref(obj.body)]
    elif isinstance(obj, Fix):
        node = ["fx", obj.fvar, obj.var, ref(obj.body)]
    elif isinstance(obj, App):
        node = ["@", ref(obj.fn), ref(obj.arg)]
    elif isinstance(obj, If):
        node = ["if", ref(obj.cond), ref(obj.then), ref(obj.orelse)]
    elif isinstance(obj, Prim):
        node = ["pr", obj.op, [ref(arg) for arg in obj.args]]
    elif isinstance(obj, Sample):
        node = ["smp"]
    elif isinstance(obj, Score):
        node = ["sc", ref(obj.arg)]
    elif isinstance(obj, RecMarker):
        node = ["mu"]
    elif isinstance(obj, ConstVal):
        node = ["c", _encode_number(obj.value)]
    elif isinstance(obj, SampleVar):
        node = ["s", obj.index]
    elif isinstance(obj, ArgVal):
        node = ["arg"]
    elif isinstance(obj, StarVal):
        node = ["*"]
    elif isinstance(obj, PrimVal):
        node = ["p", obj.op, [ref(arg) for arg in obj.args]]
    else:
        raise _Malformed(f"unencodable object {obj!r}")
    if any(part is None for part in node):  # pragma: no cover - defensive
        raise _Malformed("child encoded after parent")
    table.add(obj, node)


def _decode_table(nodes) -> List[object]:
    """Decode the node table in one left-to-right pass."""
    if not isinstance(nodes, list):
        raise _Malformed("node table is not a list")
    decoded: List[object] = []

    def child(index, kind=None):
        if not isinstance(index, int) or not 0 <= index < len(decoded):
            raise _Malformed("bad child reference")
        obj = decoded[index]
        if kind is not None and not isinstance(obj, kind):
            raise _Malformed("child of the wrong kind")
        return obj

    for node in nodes:
        if not isinstance(node, list) or not node:
            raise _Malformed("bad table node")
        tag = node[0]
        try:
            if tag == "v":
                obj = Var(str(node[1]))
            elif tag == "n":
                obj = Numeral(_decode_number(node[1]))
            elif tag == "sn":
                obj = SymNumeral(child(node[1], SymVal))
            elif tag == "l":
                obj = Lam(str(node[1]), child(node[2], Term))
            elif tag == "fx":
                obj = Fix(str(node[1]), str(node[2]), child(node[3], Term))
            elif tag == "@":
                obj = App(child(node[1], Term), child(node[2], Term))
            elif tag == "if":
                obj = If(
                    child(node[1], Term),
                    child(node[2], Term),
                    child(node[3], Term),
                )
            elif tag == "pr":
                obj = Prim(
                    str(node[1]), tuple(child(arg, Term) for arg in node[2])
                )
            elif tag == "smp":
                obj = Sample()
            elif tag == "sc":
                obj = Score(child(node[1], Term))
            elif tag == "mu":
                obj = RecMarker()
            elif tag == "c":
                obj = ConstVal(_decode_number(node[1]))
            elif tag == "s":
                obj = SampleVar(int(node[1]))
            elif tag == "arg":
                obj = ArgVal()
            elif tag == "*":
                obj = StarVal()
            elif tag == "p":
                obj = PrimVal(
                    str(node[1]), tuple(child(arg, SymVal) for arg in node[2])
                )
            else:
                raise _Malformed(f"unknown table tag {tag!r}")
        except (IndexError, TypeError, ValueError):
            raise _Malformed("bad table node") from None
        decoded.append(obj)
    return decoded


# ---------------------------------------------------------------------------
# Constraints and constraint sets.
# ---------------------------------------------------------------------------


def _encode_constraints(table: _Table, constraints: ConstraintSet) -> list:
    return [
        [constraint.relation.name, _encode_into(table, constraint.value)]
        for constraint in constraints
    ]


def _decode_constraints(encoded, decoded_table) -> ConstraintSet:
    if not isinstance(encoded, list):
        raise _Malformed("bad constraint list")
    constraints = []
    for pair in encoded:
        if not isinstance(pair, list) or len(pair) != 2:
            raise _Malformed("bad constraint")
        name, index = pair
        try:
            relation = Relation[name]
        except (KeyError, TypeError):
            raise _Malformed(f"unknown relation {name!r}") from None
        if not isinstance(index, int) or not 0 <= index < len(decoded_table):
            raise _Malformed("bad constraint value reference")
        value = decoded_table[index]
        if not isinstance(value, SymVal):
            raise _Malformed("constraint value is not symbolic")
        constraints.append(Constraint(value, relation))
    return ConstraintSet(constraints)


# ---------------------------------------------------------------------------
# Sessions.
# ---------------------------------------------------------------------------


def _encode_node(table: _Table, node: _SessionNode) -> list:
    bits = [1 if branch else 0 for branch in _node_branches(node)]
    if node.state == _SUSPENDED:
        configuration = node.configuration
        payload: Any = [
            _encode_into(table, configuration.term),
            _encode_constraints(table, configuration.constraints),
            configuration.next_variable,
            configuration.steps,
        ]
    elif node.state == _TERMINATED:
        path = node.path
        payload = [
            _encode_constraints(table, path.constraints),
            path.num_variables,
            path.steps,
            _encode_into(table, path.result),
        ]
    elif node.state == _STUCK:
        payload = node.reason
    else:  # _BRANCHED
        payload = None
    return [bits, node.state, bool(node.started), payload]


def _node_branches(node: _SessionNode) -> Tuple[bool, ...]:
    if node.configuration is not None:
        return node.configuration.branches
    if node.path is not None:
        return node.path.branches
    # Resolved nodes drop their configuration; recover branches from the key
    # (0 encodes the then-branch in the breadth-first ordering).
    return tuple(bit == 0 for bit in node.key[1])


def _decode_node(encoded, decoded_table) -> _SessionNode:
    if not isinstance(encoded, list) or len(encoded) != 4:
        raise _Malformed("bad session node")
    bits, state, started, payload = encoded
    if not isinstance(bits, list) or not all(bit in (0, 1) for bit in bits):
        raise _Malformed("bad branch bits")
    branches = tuple(bit == 1 for bit in bits)
    if state not in (_SUSPENDED, _TERMINATED, _STUCK, _BRANCHED):
        raise _Malformed(f"unknown node state {state!r}")

    def term_at(index) -> Term:
        if not isinstance(index, int) or not 0 <= index < len(decoded_table):
            raise _Malformed("bad term reference")
        term = decoded_table[index]
        if not isinstance(term, Term):
            raise _Malformed("node reference is not a term")
        return term

    node = _SessionNode.__new__(_SessionNode)
    node.key = _node_key(branches)
    node.state = state
    node.configuration = None
    node.path = None
    node.reason = None
    node.started = bool(started)
    if state == _SUSPENDED:
        if not isinstance(payload, list) or len(payload) != 4:
            raise _Malformed("bad suspended payload")
        term_index, constraints, next_variable, steps = payload
        if not isinstance(next_variable, int) or not isinstance(steps, int):
            raise _Malformed("bad suspended counters")
        node.configuration = _Configuration(
            term_at(term_index),
            _decode_constraints(constraints, decoded_table),
            next_variable,
            steps,
            branches,
        )
    elif state == _TERMINATED:
        if not isinstance(payload, list) or len(payload) != 4:
            raise _Malformed("bad terminated payload")
        constraints, num_variables, steps, result_index = payload
        if not isinstance(num_variables, int) or not isinstance(steps, int):
            raise _Malformed("bad path counters")
        node.path = SymbolicPath(
            _decode_constraints(constraints, decoded_table),
            num_variables,
            steps,
            term_at(result_index),
            branches,
        )
    elif state == _STUCK:
        if not isinstance(payload, str):
            raise _Malformed("bad stuck payload")
        node.reason = payload
    return node


def encode_session(session: ExplorationSession) -> list:
    """Serialize ``session`` as a JSON-safe list (see the module docstring).

    The encoding captures the full node list (resolved history and suspended
    frontier), the budget high-water mark, the path cap and the session's
    own statistics contribution -- everything :func:`decode_session` needs to
    continue the exploration bit-identically.
    """
    table = _Table()
    nodes = [_encode_node(table, node) for _key, node in session._nodes]
    steps, resumed, peak = session_counters(session)
    return [
        CODEC_VERSION,
        session.max_paths,
        session.max_steps,
        [steps, resumed, peak],
        table.nodes,
        nodes,
    ]


def session_counters(session: ExplorationSession) -> Tuple[int, int, int]:
    """The session's own ``(symbolic_steps, paths_resumed, frontier_peak)``.

    These count only work *this* session performed (or absorbed from its
    shards) -- the codec persists them so a restored session can credit them
    forward, keeping resumed ``PerfStats`` equal to an uninterrupted run's.
    """
    return (
        session._step_counter.symbolic_steps,
        session._counter_resumed,
        session._counter_peak,
    )


def decode_session(
    encoded,
    explorer: SymbolicExplorer,
    stats=None,
    credit_stats: bool = True,
) -> Optional[ExplorationSession]:
    """Rebuild a session from :func:`encode_session` output.

    ``stats`` (typically the restoring engine's :class:`PerfStats`) is
    credited with the persisted counters, so the restored process reports
    the same totals an uninterrupted run would; pass ``credit_stats=False``
    when the sink already counted that work (a same-process restore, or a
    shard result whose counters :meth:`ExplorationSession.absorb` will
    reconcile instead).  Returns ``None`` for anything malformed or written
    by a different codec version.
    """
    try:
        if not isinstance(encoded, list) or len(encoded) != 6:
            raise _Malformed("bad session encoding")
        version, max_paths, max_steps, counters, table, nodes = encoded
        if version != CODEC_VERSION:
            raise _Malformed(f"unknown codec version {version!r}")
        if not isinstance(max_paths, int) or max_paths < 1:
            raise _Malformed("bad max_paths")
        if not isinstance(max_steps, int) or max_steps < 0:
            raise _Malformed("bad max_steps")
        if (
            not isinstance(counters, list)
            or len(counters) != 3
            or not all(isinstance(c, int) and c >= 0 for c in counters)
        ):
            raise _Malformed("bad counters")
        decoded_table = _decode_table(table)
        if not isinstance(nodes, list) or not nodes:
            raise _Malformed("empty node list")
        session_nodes = []
        previous = None
        for record in nodes:
            node = _decode_node(record, decoded_table)
            if previous is not None and node.key <= previous:
                raise _Malformed("node keys out of order")
            previous = node.key
            session_nodes.append((node.key, node))
    except _Malformed:
        return None
    return ExplorationSession._restore(
        explorer,
        max_paths=max_paths,
        max_steps=max_steps,
        nodes=session_nodes,
        counters=tuple(counters),
        stats=stats,
        credit_stats=credit_stats,
    )


# ---------------------------------------------------------------------------
# Sharding: partition a suspended frontier into resumable sub-sessions.
# ---------------------------------------------------------------------------


def split_session(session: ExplorationSession, shard_count: int) -> List[list]:
    """Partition the suspended frontier into up to ``shard_count`` encodings.

    Each returned element encodes a standalone sub-session holding a
    contiguous (in breadth-first key order) slice of the suspended nodes --
    one subtree range of the frontier -- at the parent's budget and path
    cap, with zeroed counters: extending a shard to a deeper budget performs
    exactly the work the parent session would have spent on those nodes,
    and the shard's counters afterwards report exactly that work.

    Resolved history stays with the parent: shards are pure work units.
    Returns fewer shards than asked when the frontier is smaller.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    frontier = [
        (key, node) for key, node in session._nodes if node.state == _SUSPENDED
    ]
    if not frontier:
        return []
    shard_count = min(shard_count, len(frontier))
    shards: List[list] = []
    base, remainder = divmod(len(frontier), shard_count)
    start = 0
    for shard in range(shard_count):
        size = base + (1 if shard < remainder else 0)
        chunk = frontier[start : start + size]
        start += size
        table = _Table()
        encoded_nodes = [_encode_node(table, node) for _key, node in chunk]
        shards.append(
            [
                CODEC_VERSION,
                session.max_paths,
                session.max_steps,
                [0, 0, 0],
                table.nodes,
                encoded_nodes,
            ]
        )
    return shards
