"""Symbolic inequality constraints and constraint sets (App. B.5.1).

A *symbolic inequality* is a pair of a symbolic value and a relation against
zero (the paper compares against arbitrary reals; comparing against 0 loses no
generality because the value can absorb the bound).  Paths collected by the
symbolic executors carry a :class:`ConstraintSet`; its solution set inside
``[0, 1]^m`` is exactly the set of standard traces following that path
(Prop. B.8), and measuring it is how every probability in the reproduction is
computed.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.intervals.box import Box
from repro.intervals.interval import Interval
from repro.spcf.primitives import PrimitiveRegistry
from repro.symbolic.values import LinearForm, SymVal

Number = Union[Fraction, float, int]


def _cached_on_instance(method):
    """Memoize a zero-argument method on a frozen dataclass instance.

    The measure engine hashes and canonicalizes constraint sets on every
    cache probe, so the derived views below are computed once per (immutable)
    instance and stored via ``object.__setattr__``.
    """
    attribute = "_" + method.__name__.strip("_")

    @functools.wraps(method)
    def wrapper(self):
        try:
            return getattr(self, attribute)
        except AttributeError:
            value = method(self)
            object.__setattr__(self, attribute, value)
            return value

    return wrapper


class Relation(enum.Enum):
    """Comparison of a symbolic value against zero."""

    LE = "<= 0"
    GT = "> 0"
    GE = ">= 0"
    LT = "< 0"

    def holds(self, value: Number) -> bool:
        if self is Relation.LE:
            return value <= 0
        if self is Relation.GT:
            return value > 0
        if self is Relation.GE:
            return value >= 0
        return value < 0

    def negation(self) -> "Relation":
        return {
            Relation.LE: Relation.GT,
            Relation.GT: Relation.LE,
            Relation.GE: Relation.LT,
            Relation.LT: Relation.GE,
        }[self]


@dataclass(frozen=True)
class Constraint:
    """A symbolic inequality ``value  relation  0``.

    Instances are immutable, so the derived structure (variable set, hash) is
    computed once and cached on the instance: the measure engine hashes
    constraints on every cache probe and the sweep asks for their variables
    per box, which made recomputation a hot spot.
    """

    value: SymVal
    relation: Relation

    @_cached_on_instance
    def variables(self) -> FrozenSet[int]:
        return self.value.variables()

    @_cached_on_instance
    def __hash__(self) -> int:
        return hash((self.value, self.relation))

    @_cached_on_instance
    def sort_key(self) -> str:
        """A deterministic ordering key (cached: ``repr`` walks the value tree)."""
        return repr(self)

    def satisfied_by(
        self,
        assignment: Mapping[int, Number],
        registry: Optional[PrimitiveRegistry] = None,
        argument: Optional[Number] = None,
    ) -> bool:
        """Check the constraint under a concrete assignment of sample variables."""
        return self.relation.holds(self.value.evaluate(assignment, registry, argument))

    def box_status(
        self,
        box: Mapping[int, Interval],
        registry: Optional[PrimitiveRegistry] = None,
        argument: Optional[Interval] = None,
    ) -> Optional[bool]:
        """Decide the constraint over a whole box of assignments.

        Returns ``True`` when every assignment in the box satisfies it,
        ``False`` when none does, and ``None`` when the box straddles the
        constraint boundary (interval evaluation cannot decide).
        """
        bounds = self.value.interval_evaluate(box, registry, argument)
        if self.relation is Relation.LE:
            if bounds.hi <= 0:
                return True
            if bounds.lo > 0:
                return False
        elif self.relation is Relation.GT:
            if bounds.lo > 0:
                return True
            if bounds.hi <= 0:
                return False
        elif self.relation is Relation.GE:
            if bounds.lo >= 0:
                return True
            if bounds.hi < 0:
                return False
        else:  # Relation.LT
            if bounds.hi < 0:
                return True
            if bounds.lo >= 0:
                return False
        return None

    def linear_form(
        self, registry: Optional[PrimitiveRegistry] = None
    ) -> Optional[LinearForm]:
        return self.value.linear_form(registry)

    def __repr__(self) -> str:
        return f"({self.value!r} {self.relation.value})"


@dataclass(frozen=True)
class ConstraintSet:
    """A finite conjunction of symbolic inequalities.

    Conjunctions are immutable, so the derived views that canonicalization
    and the subdivision sweep keep asking for -- the variable set, the
    dimension, whether an unknown occurs, the hash -- are computed once per
    instance and cached (``variables`` used to rebuild a frozenset union per
    constraint, which was quadratic in the set size).
    """

    constraints: Tuple[Constraint, ...]

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        object.__setattr__(self, "constraints", tuple(constraints))

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    @_cached_on_instance
    def __hash__(self) -> int:
        return hash(self.constraints)

    def add(self, constraint: Constraint) -> "ConstraintSet":
        return ConstraintSet(self.constraints + (constraint,))

    def extend(self, constraints: Iterable[Constraint]) -> "ConstraintSet":
        return ConstraintSet(self.constraints + tuple(constraints))

    @_cached_on_instance
    def variables(self) -> FrozenSet[int]:
        collected = set()
        for constraint in self.constraints:
            collected.update(constraint.variables())
        return frozenset(collected)

    @_cached_on_instance
    def dimension(self) -> int:
        """1 + the largest sample-variable index mentioned (0 when none are)."""
        variables = self.variables()
        return (max(variables) + 1) if variables else 0

    @_cached_on_instance
    def contains_argument(self) -> bool:
        return any(c.value.contains_argument() for c in self.constraints)

    @_cached_on_instance
    def contains_star(self) -> bool:
        return any(c.value.contains_star() for c in self.constraints)

    def satisfied_by(
        self,
        assignment: Mapping[int, Number],
        registry: Optional[PrimitiveRegistry] = None,
        argument: Optional[Number] = None,
    ) -> bool:
        return all(
            constraint.satisfied_by(assignment, registry, argument)
            for constraint in self.constraints
        )

    def box_status(
        self,
        box: Mapping[int, Interval],
        registry: Optional[PrimitiveRegistry] = None,
        argument: Optional[Interval] = None,
    ) -> Optional[bool]:
        """Decide all constraints over a box: True / False / undecided (None)."""
        undecided = False
        for constraint in self.constraints:
            status = constraint.box_status(box, registry, argument)
            if status is False:
                return False
            if status is None:
                undecided = True
        return None if undecided else True

    def all_linear(self, registry: Optional[PrimitiveRegistry] = None) -> bool:
        """True iff every constraint has an exact affine form."""
        return all(c.linear_form(registry) is not None for c in self.constraints)

    @_cached_on_instance
    def support_blocks(
        self,
    ) -> Tuple[Tuple[Tuple[int, ...], Tuple[Constraint, ...]], ...]:
        """Partition the constraints into connected components over variables.

        Two constraints belong to the same *block* when they (transitively)
        share a sample variable; the solution set of the conjunction is then
        the Cartesian product of the blocks' solution sets, so its measure is
        the product of the block measures.  Each returned block is a pair of
        the block's variables (sorted) and its constraints (in set order);
        blocks are ordered by their smallest variable.  Constraints that
        mention no sample variable at all are collected into a single leading
        block with an empty variable tuple.

        The partition only looks at variable *support*
        (:meth:`Constraint.variables`), not at linearity -- deciding whether a
        per-block measurement is exact is the measure engine's job.
        """
        parent: dict = {}

        def find(variable: int) -> int:
            root = variable
            while parent[root] != root:
                root = parent[root]
            while parent[variable] != root:  # path compression
                parent[variable], variable = root, parent[variable]
            return root

        for constraint in self.constraints:
            variables = sorted(constraint.variables())
            for variable in variables:
                parent.setdefault(variable, variable)
            for first, second in zip(variables, variables[1:]):
                parent[find(first)] = find(second)

        members: dict = {}
        for variable in parent:
            members.setdefault(find(variable), []).append(variable)
        constraints_by_root: dict = {root: [] for root in members}
        constants = []
        for constraint in self.constraints:
            variables = constraint.variables()
            if not variables:
                constants.append(constraint)
                continue
            constraints_by_root[find(min(variables))].append(constraint)

        blocks = []
        if constants:
            blocks.append(((), tuple(constants)))
        for root in sorted(members, key=lambda root: min(members[root])):
            blocks.append(
                (tuple(sorted(members[root])), tuple(constraints_by_root[root]))
            )
        return tuple(blocks)

    def __repr__(self) -> str:
        return "ConstraintSet(" + ", ".join(map(repr, self.constraints)) + ")"


def remap_constraints(
    constraints: Iterable[Constraint], variables: Sequence[int]
) -> ConstraintSet:
    """Renumber the sample variables of ``constraints`` to ``0..len(variables)-1``.

    ``variables`` lists the old indices in the order they should be assigned
    new positions.  Renumbering is a measure-preserving bijection of the unit
    cube, so a block measures identically wherever its variables originally
    sat -- which is what lets the measure engine share one cache entry between
    same-shaped blocks drawn from different sample positions.

    The value trees are walked with an explicit stack: renumbering sits on
    the measure engine's per-block hot path, and the sweep workloads build
    arbitrarily deep primitive chains (one per reduction step), which must
    not be bounded by the interpreter's recursion limit.
    """
    from repro.symbolic.values import PrimVal, SampleVar, SymVal

    remapping = {variable: position for position, variable in enumerate(variables)}

    def remap_value(value: SymVal) -> SymVal:
        results: list = []
        work: list = [("visit", value)]
        while work:
            tag, item = work.pop()
            if tag == "assemble":
                count = len(item.args)
                arguments = [results.pop() for _ in range(count)]  # newest-first
                arguments.reverse()
                results.append(PrimVal(item.op, tuple(arguments)))
            elif isinstance(item, PrimVal):
                work.append(("assemble", item))
                for argument in reversed(item.args):
                    work.append(("visit", argument))
            elif isinstance(item, SampleVar):
                results.append(SampleVar(remapping.get(item.index, item.index)))
            else:
                results.append(item)
        return results[0]

    return ConstraintSet(
        Constraint(remap_value(constraint.value), constraint.relation)
        for constraint in constraints
    )


def box_from_sequence(intervals: Sequence[Interval]) -> Mapping[int, Interval]:
    """View a sequence of intervals as a variable-indexed box mapping."""
    return {index: interval for index, interval in enumerate(intervals)}


def box_to_mapping(box: Box) -> Mapping[int, Interval]:
    """View a :class:`~repro.intervals.box.Box` as a variable-indexed mapping."""
    return {index: interval for index, interval in enumerate(box.intervals)}
