"""Stochastic symbolic execution for SPCF (App. B.5 and Sec. 6.1).

Instead of evaluating a program on a fixed trace of random draws, symbolic
execution runs it on a trace of *sample variables* ``a_0, a_1, ...`` whose
values are instantiated later, collecting the inequality constraints that the
draws must satisfy for a given control-flow path to be followed.  The measure
of the solution set of those constraints is then exactly the probability of
the path, which is what the lower-bound engine (Sec. 3 / Sec. 7.1) and the
AST verifier (Sec. 6) measure via the :mod:`repro.geometry` oracles.
"""

from repro.symbolic.values import (
    ArgVal,
    ConstVal,
    PrimVal,
    SampleVar,
    StarVal,
    SymNumeral,
    SymVal,
    const,
    sample_var,
)
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation
from repro.symbolic.execute import (
    ExplorationSession,
    FrontierCapError,
    SymbolicExplorer,
    SymbolicPath,
    ExplorationResult,
)
from repro.symbolic.codec import (
    decode_session,
    encode_session,
    session_counters,
    split_session,
)

__all__ = [
    "ArgVal",
    "Constraint",
    "ConstraintSet",
    "ConstVal",
    "ExplorationResult",
    "ExplorationSession",
    "FrontierCapError",
    "PrimVal",
    "Relation",
    "SampleVar",
    "StarVal",
    "SymNumeral",
    "SymVal",
    "SymbolicExplorer",
    "SymbolicPath",
    "const",
    "sample_var",
    "decode_session",
    "encode_session",
    "session_counters",
    "split_session",
]
