"""Symbolic small-step execution and path exploration (App. B.5, Sec. 7.1).

The executor evaluates a closed SPCF term on a trace of *sample variables*:
every ``sample`` redex is resolved by a fresh variable ``a_i`` and every
conditional whose guard still mentions sample variables *forks* the execution,
recording the guard constraint (``guard <= 0`` on the left branch, ``guard >
0`` on the right branch) -- this is precisely the conditional-oracle semantics
of Fig. 11/12.  A terminating path therefore consists of

* the constraint set over the sample variables it introduced,
* the number of sample variables and of reduction steps,
* the branch choices taken (the conditional oracle ``kappa``).

Exploration enumerates terminating paths up to a per-path step budget (and an
optional bound on the number of explored paths); the measures of their
constraint sets sum to a lower bound on ``Pterm`` (Thm. 3.4 + Prop. B.8),
which is what :mod:`repro.lowerbound` computes.

Exploration is *resumable*: an :class:`ExplorationSession` keeps every
configuration ever created -- terminated, stuck, branched, or suspended on
the step budget -- ordered by its position in the breadth-first traversal,
so :meth:`ExplorationSession.extend` deepens the exploration by resuming the
suspended frontier instead of re-deriving every shallow path from the root.
The completeness result (Thm. 3.8) is inherently anytime -- the bound only
improves with the budget -- and the session makes that operational: each
``extend`` returns an :class:`ExplorationResult` *bit-identical* to a fresh
:meth:`SymbolicExplorer.explore` at the same budget, while executing each
reduction step at most once across the whole schedule.

The same stepping machinery supports a call-by-value mode and a distinguished
*recursion marker*; the AST verifier (Sec. 6) uses those to build symbolic
execution trees of recursion bodies.

Invariants
----------

* **Bit-identity of resumption.**  For every budget ``d`` and every schedule
  of extends reaching it, ``session.extend(d)`` returns an
  :class:`ExplorationResult` equal -- path list, path order, constraint
  sets, statistics included -- to ``SymbolicExplorer.explore(term, d)`` from
  scratch.  The frontier is ordered by breadth-first discovery index, so
  resumption changes *when* a configuration is stepped, never *whether* or
  *in which output position*.
* **Monotone budgets.**  Budgets within a session are non-decreasing and
  path sets only grow with them; every terminated path reported at depth
  ``d`` is reported at every depth ``d' >= d``.  This is what makes the
  anytime lower bound monotone.
* **Each step once.**  Across a whole schedule, each small-step reduction is
  executed at most once; deepening costs only the new frontier work.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import repro.telemetry as telemetry
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    substitute,
)
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation
from repro.symbolic.values import (
    ConstVal,
    SampleVar,
    SymNumeral,
    SymVal,
    simplify_prim,
)


@dataclass(frozen=True)
class RecMarker(Term):
    """The distinguished symbol ``mu`` standing for the recursive function.

    The counting semantics of Sec. 5.2 analyses ``body(r) = M[r/x, mu/phi]``:
    the recursive function is replaced by this marker, and applying the marker
    to a value is recorded as a recursive call whose outcome is the unknown
    numeral ``star``.
    """


class Strategy(enum.Enum):
    """Evaluation strategy of the symbolic executor."""

    CBN = "call-by-name"
    CBV = "call-by-value"


def as_symbolic_value(term: Term) -> Optional[SymVal]:
    """View a term-level constant of type R as a symbolic value, if it is one."""
    if isinstance(term, Numeral):
        return ConstVal(term.value)
    if isinstance(term, SymNumeral):
        return term.value
    return None


def _is_symbolic_value(term: Term) -> bool:
    return isinstance(term, (Var, Numeral, SymNumeral, Lam, Fix, RecMarker))


# ---------------------------------------------------------------------------
# One symbolic step.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StepValue:
    """The term is already a value."""


@dataclass(frozen=True)
class StepTerm:
    """A deterministic step to ``term``; ``consumed_sample`` reports whether a
    fresh sample variable was introduced."""

    term: Term
    consumed_sample: bool = False


@dataclass(frozen=True)
class StepBranch:
    """A conditional on a non-constant symbolic guard: the execution forks."""

    guard: SymVal
    then_term: Term
    else_term: Term


@dataclass(frozen=True)
class StepScore:
    """A ``score`` on a non-constant symbolic value: records ``value >= 0``."""

    value: SymVal
    term: Term


@dataclass(frozen=True)
class StepRecCall:
    """An application of the recursion marker to a value (CbV counting mode)."""

    argument: SymVal
    term: Term


@dataclass(frozen=True)
class StepStuck:
    """No rule applies."""

    reason: str


StepOutcome = Union[StepValue, StepTerm, StepBranch, StepScore, StepRecCall, StepStuck]


class SymbolicStepper:
    """Performs single symbolic reduction steps under a chosen strategy."""

    def __init__(
        self,
        strategy: Strategy = Strategy.CBN,
        registry: Optional[PrimitiveRegistry] = None,
    ) -> None:
        self.strategy = strategy
        self.registry = registry or default_registry()

    def step(self, term: Term, next_variable: int) -> StepOutcome:
        """Reduce the unique redex of ``term``; fresh samples use ``next_variable``."""
        if _is_symbolic_value(term):
            return StepValue()
        return self._step(term, next_variable)

    # The private helpers return outcomes whose continuation terms are the
    # *redex-local* results; contexts are rebuilt on the way out.

    def _step(self, term: Term, next_variable: int) -> StepOutcome:
        if isinstance(term, App):
            return self._step_app(term, next_variable)
        if isinstance(term, If):
            return self._step_if(term, next_variable)
        if isinstance(term, Prim):
            return self._step_prim(term, next_variable)
        if isinstance(term, Sample):
            return StepTerm(SymNumeral(SampleVar(next_variable)), consumed_sample=True)
        if isinstance(term, Score):
            return self._step_score(term, next_variable)
        if isinstance(term, Var):
            return StepStuck(f"free variable {term.name!r}")
        return StepStuck(f"cannot step term {term!r}")

    def _step_app(self, term: App, next_variable: int) -> StepOutcome:
        fn, arg = term.fn, term.arg
        if not _is_symbolic_value(fn):
            return self._in_context(
                self._step(fn, next_variable), lambda t: App(t, arg)
            )
        if self.strategy is Strategy.CBV and not _is_symbolic_value(arg):
            if isinstance(fn, (Lam, Fix, RecMarker)):
                return self._in_context(
                    self._step(arg, next_variable), lambda t: App(fn, t)
                )
        if isinstance(fn, RecMarker):
            argument = as_symbolic_value(arg)
            if argument is None and self.strategy is Strategy.CBV:
                return StepStuck("recursion marker applied to a non-numeric value")
            # The outcome of the recursive call is the unknown numeral ``star``
            # (Fig. 5); the continuation resumes with it in redex position.
            from repro.symbolic.values import StarVal

            return StepRecCall(
                argument if argument is not None else ConstVal(0),
                SymNumeral(StarVal()),
            )
        if isinstance(fn, Lam):
            if self.strategy is Strategy.CBV and not _is_symbolic_value(arg):
                return self._in_context(
                    self._step(arg, next_variable), lambda t: App(fn, t)
                )
            return StepTerm(substitute(fn.body, {fn.var: arg}))
        if isinstance(fn, Fix):
            if self.strategy is Strategy.CBV and not _is_symbolic_value(arg):
                return self._in_context(
                    self._step(arg, next_variable), lambda t: App(fn, t)
                )
            return StepTerm(substitute(fn.body, {fn.var: arg, fn.fvar: fn}))
        return StepStuck("application of a non-function value")

    def _step_if(self, term: If, next_variable: int) -> StepOutcome:
        guard = as_symbolic_value(term.cond)
        if guard is not None:
            if isinstance(guard, ConstVal):
                chosen = term.then if guard.value <= 0 else term.orelse
                return StepTerm(chosen)
            return StepBranch(guard, term.then, term.orelse)
        if _is_symbolic_value(term.cond):
            return StepStuck("conditional guard is not of type R")
        return self._in_context(
            self._step(term.cond, next_variable),
            lambda t: If(t, term.then, term.orelse),
        )

    def _step_prim(self, term: Prim, next_variable: int) -> StepOutcome:
        for index, argument in enumerate(term.args):
            if as_symbolic_value(argument) is not None:
                continue
            if _is_symbolic_value(argument):
                return StepStuck(f"primitive argument {index} is not of type R")
            prefix = term.args[:index]
            suffix = term.args[index + 1 :]
            return self._in_context(
                self._step(argument, next_variable),
                lambda t: Prim(term.op, prefix + (t,) + suffix),
            )
        values = [as_symbolic_value(argument) for argument in term.args]
        if any(value.contains_star() for value in values):
            # f(..., star, ...) reduces to star (Fig. 5).
            from repro.symbolic.values import StarVal

            return StepTerm(SymNumeral(StarVal()))
        try:
            result = simplify_prim(term.op, values, self.registry)
        except (ValueError, ZeroDivisionError, OverflowError) as error:
            return StepStuck(f"primitive {term.op!r} failed: {error}")
        return StepTerm(SymNumeral(result))

    def _step_score(self, term: Score, next_variable: int) -> StepOutcome:
        value = as_symbolic_value(term.arg)
        if value is not None:
            if isinstance(value, ConstVal):
                if value.value < 0:
                    return StepStuck("score of a negative constant")
                return StepTerm(SymNumeral(value))
            return StepScore(value, SymNumeral(value))
        if _is_symbolic_value(term.arg):
            return StepStuck("score argument is not of type R")
        return self._in_context(
            self._step(term.arg, next_variable), lambda t: Score(t)
        )

    @staticmethod
    def _in_context(outcome: StepOutcome, plug) -> StepOutcome:
        """Rebuild the surrounding evaluation context around an inner outcome."""
        if isinstance(outcome, StepTerm):
            return StepTerm(plug(outcome.term), outcome.consumed_sample)
        if isinstance(outcome, StepBranch):
            return StepBranch(outcome.guard, plug(outcome.then_term), plug(outcome.else_term))
        if isinstance(outcome, StepScore):
            return StepScore(outcome.value, plug(outcome.term))
        if isinstance(outcome, StepRecCall):
            return StepRecCall(outcome.argument, plug(outcome.term))
        return outcome


# ---------------------------------------------------------------------------
# Path exploration.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymbolicPath:
    """A terminating symbolic execution path.

    ``constraints`` characterise exactly the standard traces of length
    ``num_variables`` that follow this path; ``steps`` is the number of
    reduction steps to the value ``result`` and ``branches`` the conditional
    oracle (``True`` = left/then branch).
    """

    constraints: ConstraintSet
    num_variables: int
    steps: int
    result: Term
    branches: Tuple[bool, ...]


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of a bounded exploration of the symbolic execution tree."""

    terminated: Tuple[SymbolicPath, ...]
    unfinished: int
    stuck: int
    exhausted_path_budget: bool

    @property
    def complete(self) -> bool:
        """True iff every path reached a value within the budgets."""
        return self.unfinished == 0 and not self.exhausted_path_budget


@dataclass
class _Configuration:
    term: Term
    constraints: ConstraintSet
    next_variable: int
    steps: int
    branches: Tuple[bool, ...]


# Session-node states: a node is the lifetime record of one configuration of
# the breadth-first traversal.  SUSPENDED nodes carry a live configuration
# that a deeper budget can resume; the other states are final.
_SUSPENDED = 0
_TERMINATED = 1
_STUCK = 2
_BRANCHED = 3

_NodeKey = Tuple[int, Tuple[int, ...]]


class _StepCounter:
    """Session-local symbolic-step count.

    Every extend routes :meth:`SymbolicExplorer._run_to_event` through this
    holder and mirrors the delta into the shared stats sink, so the session
    always knows how much stepping *it* performed -- the frontier codec
    persists these counters, which is what lets a restored process report
    the same ``PerfStats`` as an uninterrupted run.
    """

    __slots__ = ("symbolic_steps",)

    def __init__(self) -> None:
        self.symbolic_steps = 0


class FrontierCapError(RuntimeError):
    """Absorbing shard results would overrun the session's ``max_paths`` cap.

    Shards each run under the full cap, so their union can exceed it -- a
    single-process extend would instead have stopped early and left nodes
    queued.  Callers catch this and fall back to extending the pre-split
    session inline, which reproduces the capped result exactly.
    """


class _SessionNode:
    """One configuration of the branching tree, across every budget.

    ``key`` is the node's position in the breadth-first pop order: level
    first, then the branch string (with the then-branch before the
    else-branch, matching the push order of the historical deque traversal).
    The key is budget-independent, which is what lets a resumed session
    interleave newly discovered children into exactly the positions a fresh
    exploration would pop them at.
    """

    __slots__ = ("key", "state", "configuration", "path", "reason", "started")

    def __init__(self, key: _NodeKey, configuration: _Configuration) -> None:
        self.key = key
        self.state = _SUSPENDED
        self.configuration: Optional[_Configuration] = configuration
        self.path: Optional[SymbolicPath] = None
        self.reason: Optional[str] = None
        self.started = False  # whether any extend has stepped this node yet


def _node_key(branches: Tuple[bool, ...]) -> _NodeKey:
    return (len(branches), tuple(0 if branch else 1 for branch in branches))


class ExplorationSession:
    """A resumable, anytime exploration of one closed term's branching tree.

    The session owns every node of the traversal.  :meth:`extend` replays the
    breadth-first pop order under a (non-decreasing) per-path step budget:
    already-resolved nodes replay their recorded outcome in O(1), suspended
    nodes resume stepping from exactly where the previous budget stopped, and
    nodes that fork enqueue their children at the breadth-first position a
    fresh exploration would give them.  Consequently

    * ``session.extend(d)`` returns an :class:`ExplorationResult` equal --
      terminated tuple, order, counts, budget flag -- to
      ``SymbolicExplorer.explore(term, d, max_paths)`` on a fresh explorer,
    * no reduction step is ever executed twice across a schedule of extends,
    * a ``max_paths`` cap is stable under resumption: nodes beyond the cap
      stay queued (never silently dropped) and every subsequent result keeps
      reporting ``exhausted_path_budget=True`` until the budget admits them.
    """

    def __init__(
        self,
        explorer: "SymbolicExplorer",
        term: Term,
        max_paths: int = 100_000,
        stats=None,
    ) -> None:
        self._explorer = explorer
        self.max_paths = max_paths
        self.stats = stats if stats is not None else explorer.stats
        root = _SessionNode(_node_key(()), _Configuration(term, ConstraintSet(), 0, 0, ()))
        self._nodes: List[Tuple[_NodeKey, _SessionNode]] = [(root.key, root)]
        self._max_steps = 0
        self._last_result: Optional[ExplorationResult] = None
        # Session-local counters, mirrored into ``self.stats`` as they grow.
        # The frontier codec persists them (see :mod:`repro.symbolic.codec`).
        self._step_counter = _StepCounter()
        self._counter_resumed = 0
        self._counter_peak = 0

    @classmethod
    def _restore(
        cls,
        explorer: "SymbolicExplorer",
        *,
        max_paths: int,
        max_steps: int,
        nodes: List[Tuple[_NodeKey, _SessionNode]],
        counters: Tuple[int, int, int],
        stats=None,
        credit_stats: bool = True,
    ) -> "ExplorationSession":
        """Rebuild a session from decoded state (used by the frontier codec).

        ``counters`` is the persisted ``(symbolic_steps, paths_resumed,
        frontier_peak)`` triple; with ``credit_stats`` (the default) it is
        credited to the stats sink so the restored process reports the same
        totals an uninterrupted run would.  Pass ``credit_stats=False`` when
        the sink already counted that work -- a same-process restore, e.g. a
        daemon re-hydrating a session it evicted earlier.
        """
        session = cls.__new__(cls)
        session._explorer = explorer
        session.max_paths = max_paths
        session.stats = stats if stats is not None else explorer.stats
        session._nodes = nodes
        session._max_steps = max_steps
        session._last_result = None
        session._step_counter = _StepCounter()
        steps, resumed, peak = counters
        session._step_counter.symbolic_steps = steps
        session._counter_resumed = resumed
        session._counter_peak = peak
        sink = session.stats
        if sink is not None:
            if credit_stats:
                sink.symbolic_steps += steps
                sink.paths_resumed += resumed
                if hasattr(sink, "frontier_restores"):
                    sink.frontier_restores += 1
            if peak > sink.frontier_peak:
                sink.frontier_peak = peak
        return session

    @property
    def max_steps(self) -> int:
        """The deepest per-path step budget any extend has reached."""
        return self._max_steps

    @property
    def result(self) -> Optional[ExplorationResult]:
        """The most recent :class:`ExplorationResult` (``None`` before any extend)."""
        return self._last_result

    @property
    def frontier_size(self) -> int:
        """Configurations a deeper budget could still advance (suspended or queued)."""
        return sum(1 for _, node in self._nodes if node.state == _SUSPENDED)

    def extend(self, max_steps: int) -> ExplorationResult:
        """Deepen the exploration to a per-path budget of ``max_steps``.

        Budgets must be non-decreasing across extends (resolved outcomes
        cannot be un-resolved); re-extending to the current budget replays
        the recorded result without stepping.
        """
        if max_steps < self._max_steps:
            raise ValueError(
                f"exploration budgets are non-decreasing: asked for {max_steps} "
                f"after {self._max_steps}"
            )
        self._max_steps = max_steps
        writer = telemetry.active()
        token = (
            writer.begin("explore", budget=max_steps) if writer is not None else None
        )
        stats = self.stats
        counter = self._step_counter
        steps_before = counter.symbolic_steps
        heap = self._nodes
        heapq.heapify(heap)  # kept sorted between extends; heapify is then O(n)
        processed: List[Tuple[_NodeKey, _SessionNode]] = []
        terminated: List[SymbolicPath] = []
        unfinished = 0
        stuck = 0
        explored = 0
        exhausted = False
        # The live frontier: configurations a deeper budget could still
        # advance (suspended nodes, processed or queued) -- the same set
        # :attr:`frontier_size` reports between extends.
        live = sum(1 for _, node in heap if node.state == _SUSPENDED)
        peak = live
        try:
            while heap:
                if explored >= self.max_paths:
                    exhausted = True
                    break
                key, node = heapq.heappop(heap)
                processed.append((key, node))
                explored += 1
                state = node.state
                if state == _TERMINATED:
                    terminated.append(node.path)
                    continue
                if state == _STUCK:
                    stuck += 1
                    continue
                if state == _BRANCHED:
                    continue
                # Suspended: resume (or start) stepping under the new budget.
                # Only resumes with actual headroom count -- each one stands
                # for a re-execution from the root the session avoided.
                if node.started and node.configuration.steps < max_steps:
                    self._counter_resumed += 1
                    if stats is not None:
                        stats.paths_resumed += 1
                node.started = True
                kind, payload = self._explorer._run_to_event(
                    node.configuration, max_steps, stats=counter
                )
                if kind == "terminated":
                    node.state = _TERMINATED
                    node.path = payload
                    node.configuration = None
                    terminated.append(payload)
                    live -= 1
                elif kind == "stuck":
                    node.state = _STUCK
                    node.reason = payload
                    node.configuration = None
                    stuck += 1
                    live -= 1
                elif kind == "branch":
                    node.state = _BRANCHED
                    node.configuration = None
                    for configuration in payload:
                        child = _SessionNode(
                            _node_key(configuration.branches), configuration
                        )
                        heapq.heappush(heap, (child.key, child))
                    live += 1  # the node resolved, its two children are live
                    if live > peak:
                        peak = live
                else:  # unfinished: the budget ran out mid-path; stays suspended
                    unfinished += 1
        finally:
            # Stepping goes through the session-local counter; mirror the
            # delta into the shared sink even if an extend is interrupted.
            if stats is not None:
                stats.symbolic_steps += counter.symbolic_steps - steps_before
        # Nodes beyond the path cap stay queued for the next extend; their
        # keys all exceed every processed key, so the node list stays sorted.
        self._nodes = processed + sorted(heap)
        if peak > self._counter_peak:
            self._counter_peak = peak
        if stats is not None and peak > stats.frontier_peak:
            stats.frontier_peak = peak
        result = ExplorationResult(tuple(terminated), unfinished, stuck, exhausted)
        self._last_result = result
        if token is not None:
            writer.end(token, terminated=len(terminated), frontier=live)
        return result

    def extend_until(
        self,
        gap=None,
        target_gap=0,
        max_paths: Optional[int] = None,
        step_increment: int = 50,
        max_steps: int = 10_000,
    ) -> ExplorationResult:
        """Deepen in ``step_increment`` strides until a stop rule fires.

        Stops as soon as the exploration is complete, ``gap(result)`` (an
        arbitrary caller-supplied metric -- the lower-bound engine passes its
        certified measure slack) drops to ``target_gap``, at least
        ``max_paths`` terminated paths have been found, or the per-path
        budget reaches ``max_steps``.  Returns the last result.
        """
        if step_increment < 1:
            raise ValueError("step_increment must be at least 1")
        budget = self._max_steps
        if budget >= max_steps:
            # Already past the ceiling: replay the current budget's result
            # (budgets are non-decreasing, so it cannot shrink back).
            return self.extend(budget)
        while True:
            budget = min(budget + step_increment, max_steps)
            result = self.extend(budget)
            if result.complete:
                return result
            if gap is not None and gap(result) <= target_gap:
                return result
            if max_paths is not None and len(result.terminated) >= max_paths:
                return result
            if budget >= max_steps:
                return result

    def absorb(self, shards: List["ExplorationSession"], depth: int) -> None:
        """Merge shard sessions extended to ``depth`` back into this session.

        The distributed scheduler splits this session's suspended frontier
        into sub-sessions (:func:`repro.symbolic.codec.split_session`), has
        workers extend each to ``depth``, and absorbs the results here.  The
        merge is purely structural: shard node lists replace the suspended
        nodes they descended from, keyed by the budget-independent
        breadth-first keys, so the merged node list is exactly the one a
        single-process ``extend(depth)`` would have produced.  Counters are
        reconciled exactly:

        * ``symbolic_steps`` / ``paths_resumed`` are summed from the shard
          counters (both are per-node properties, independent of the global
          pop interleaving);
        * ``frontier_peak`` is recomputed by replaying the global pop order
          (key order) over the merged nodes with their known final states --
          the same ``live`` trajectory the single-process extend walks.

        After absorbing, call ``extend(depth)``: every node replays in O(1)
        (suspended nodes have no budget headroom left), rebuilding the
        :class:`ExplorationResult` through the ordinary code path --
        bit-identical to the single-process run.

        Raises :class:`FrontierCapError` when the merged node count exceeds
        ``max_paths`` (a single-process extend would have stopped early; the
        caller must fall back to an inline extend) and :class:`ValueError`
        when the shards do not exactly cover the suspended frontier.
        """
        if depth < self._max_steps:
            raise ValueError(
                f"exploration budgets are non-decreasing: asked for {depth} "
                f"after {self._max_steps}"
            )
        history: dict = {}
        frontier_keys = set()
        for key, node in self._nodes:
            if node.state == _SUSPENDED:
                frontier_keys.add(key)
            else:
                history[key] = node
        merged = dict(history)
        shard_steps = 0
        shard_resumed = 0
        covered = set()
        for shard in shards:
            if shard.max_steps != depth:
                raise ValueError(
                    f"shard extended to {shard.max_steps}, expected {depth}"
                )
            shard_steps += shard._step_counter.symbolic_steps
            shard_resumed += shard._counter_resumed
            for key, node in shard._nodes:
                if key in history:
                    raise ValueError(
                        f"shard node {key!r} collides with resolved history"
                    )
                if key in covered or (key in merged and key not in frontier_keys):
                    raise ValueError(f"shards overlap on node {key!r}")
                covered.add(key)
                merged[key] = node
        missing = frontier_keys - covered
        if missing:
            raise ValueError(
                f"shards cover only {len(frontier_keys) - len(missing)} of "
                f"{len(frontier_keys)} frontier nodes"
            )
        if len(merged) > self.max_paths:
            raise FrontierCapError(
                f"merged exploration has {len(merged)} nodes, "
                f"max_paths is {self.max_paths}"
            )
        nodes = sorted(merged.items())
        # Replay the global pop order with known final states to recover the
        # exact ``live`` trajectory (see ``extend``): resolved history nodes
        # replay, everything else was suspended when popped.
        live = len(frontier_keys)
        peak = live
        for key, node in nodes:
            if key in history:
                continue
            if node.state in (_TERMINATED, _STUCK):
                live -= 1
            elif node.state == _BRANCHED:
                live += 1
                if live > peak:
                    peak = live
        self._nodes = nodes
        self._step_counter.symbolic_steps += shard_steps
        self._counter_resumed += shard_resumed
        if peak > self._counter_peak:
            self._counter_peak = peak
        stats = self.stats
        if stats is not None:
            stats.symbolic_steps += shard_steps
            stats.paths_resumed += shard_resumed
            if peak > stats.frontier_peak:
                stats.frontier_peak = peak


class SymbolicExplorer:
    """Enumerates terminating symbolic paths of a closed SPCF term."""

    def __init__(
        self,
        strategy: Strategy = Strategy.CBN,
        registry: Optional[PrimitiveRegistry] = None,
        stats=None,
    ) -> None:
        self.registry = registry or default_registry()
        self.stepper = SymbolicStepper(strategy, self.registry)
        # Optional counter sink: any object with ``symbolic_steps`` /
        # ``paths_resumed`` / ``frontier_peak`` attributes (in practice the
        # measure engine's PerfStats; kept duck-typed to avoid a geometry
        # import from the symbolic layer).
        self.stats = stats

    def session(
        self, term: Term, max_paths: int = 100_000, stats=None
    ) -> ExplorationSession:
        """A resumable exploration of ``term`` (see :class:`ExplorationSession`)."""
        return ExplorationSession(
            self, term, max_paths=max_paths, stats=stats if stats is not None else self.stats
        )

    def explore(
        self,
        term: Term,
        max_steps_per_path: int = 500,
        max_paths: int = 100_000,
    ) -> ExplorationResult:
        """Enumerate terminating paths with at most ``max_steps_per_path`` steps each.

        The exploration is a breadth-first traversal of the (binary) branching
        tree, so when the ``max_paths`` budget is exhausted the paths already
        returned are exactly those with the fewest branch decisions -- the
        bound is an anytime result that only improves with a larger budget.
        Paths still running when their step budget is exhausted are counted in
        ``unfinished`` so that callers know whether the returned set of paths
        is exhaustive up to that depth.

        A one-shot convenience around :class:`ExplorationSession`: callers
        that deepen repeatedly should hold a session instead and ``extend``
        it -- the results are bit-identical either way.
        """
        return self.session(term, max_paths=max_paths).extend(max_steps_per_path)

    def _run_to_event(
        self, configuration: _Configuration, max_steps: int, stats=None
    ) -> Tuple[str, object]:
        term = configuration.term
        constraints = configuration.constraints
        next_variable = configuration.next_variable
        steps = configuration.steps
        branches = configuration.branches
        executed = 0
        try:
            while steps < max_steps:
                outcome = self.stepper.step(term, next_variable)
                if isinstance(outcome, StepValue):
                    return (
                        "terminated",
                        SymbolicPath(constraints, next_variable, steps, term, branches),
                    )
                if isinstance(outcome, StepTerm):
                    term = outcome.term
                    if outcome.consumed_sample:
                        next_variable += 1
                    steps += 1
                    executed += 1
                    continue
                if isinstance(outcome, StepScore):
                    constraints = constraints.add(Constraint(outcome.value, Relation.GE))
                    term = outcome.term
                    steps += 1
                    executed += 1
                    continue
                if isinstance(outcome, StepBranch):
                    executed += 1  # the step into the branches
                    left = _Configuration(
                        outcome.then_term,
                        constraints.add(Constraint(outcome.guard, Relation.LE)),
                        next_variable,
                        steps + 1,
                        branches + (True,),
                    )
                    right = _Configuration(
                        outcome.else_term,
                        constraints.add(Constraint(outcome.guard, Relation.GT)),
                        next_variable,
                        steps + 1,
                        branches + (False,),
                    )
                    return ("branch", [left, right])
                if isinstance(outcome, StepRecCall):
                    return ("stuck", "unexpected recursion marker during exploration")
                if isinstance(outcome, StepStuck):
                    return ("stuck", outcome.reason)
                raise TypeError(f"unexpected step outcome {outcome!r}")
            # Budget exhausted mid-path: record the progress in place so a
            # deeper budget resumes here instead of re-deriving the prefix.
            configuration.term = term
            configuration.constraints = constraints
            configuration.next_variable = next_variable
            configuration.steps = steps
            return ("unfinished", None)
        finally:
            if stats is None:
                stats = self.stats
            if stats is not None:
                stats.symbolic_steps += executed
