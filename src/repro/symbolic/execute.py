"""Symbolic small-step execution and path exploration (App. B.5, Sec. 7.1).

The executor evaluates a closed SPCF term on a trace of *sample variables*:
every ``sample`` redex is resolved by a fresh variable ``a_i`` and every
conditional whose guard still mentions sample variables *forks* the execution,
recording the guard constraint (``guard <= 0`` on the left branch, ``guard >
0`` on the right branch) -- this is precisely the conditional-oracle semantics
of Fig. 11/12.  A terminating path therefore consists of

* the constraint set over the sample variables it introduced,
* the number of sample variables and of reduction steps,
* the branch choices taken (the conditional oracle ``kappa``).

Exploration enumerates terminating paths up to a per-path step budget (and an
optional bound on the number of explored paths); the measures of their
constraint sets sum to a lower bound on ``Pterm`` (Thm. 3.4 + Prop. B.8),
which is what :mod:`repro.lowerbound` computes.

The same stepping machinery supports a call-by-value mode and a distinguished
*recursion marker*; the AST verifier (Sec. 6) uses those to build symbolic
execution trees of recursion bodies.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple, Union

from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import (
    App,
    Fix,
    If,
    Lam,
    Numeral,
    Prim,
    Sample,
    Score,
    Term,
    Var,
    substitute,
)
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation
from repro.symbolic.values import (
    ConstVal,
    SampleVar,
    SymNumeral,
    SymVal,
    simplify_prim,
)


@dataclass(frozen=True)
class RecMarker(Term):
    """The distinguished symbol ``mu`` standing for the recursive function.

    The counting semantics of Sec. 5.2 analyses ``body(r) = M[r/x, mu/phi]``:
    the recursive function is replaced by this marker, and applying the marker
    to a value is recorded as a recursive call whose outcome is the unknown
    numeral ``star``.
    """


class Strategy(enum.Enum):
    """Evaluation strategy of the symbolic executor."""

    CBN = "call-by-name"
    CBV = "call-by-value"


def as_symbolic_value(term: Term) -> Optional[SymVal]:
    """View a term-level constant of type R as a symbolic value, if it is one."""
    if isinstance(term, Numeral):
        return ConstVal(term.value)
    if isinstance(term, SymNumeral):
        return term.value
    return None


def _is_symbolic_value(term: Term) -> bool:
    return isinstance(term, (Var, Numeral, SymNumeral, Lam, Fix, RecMarker))


# ---------------------------------------------------------------------------
# One symbolic step.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StepValue:
    """The term is already a value."""


@dataclass(frozen=True)
class StepTerm:
    """A deterministic step to ``term``; ``consumed_sample`` reports whether a
    fresh sample variable was introduced."""

    term: Term
    consumed_sample: bool = False


@dataclass(frozen=True)
class StepBranch:
    """A conditional on a non-constant symbolic guard: the execution forks."""

    guard: SymVal
    then_term: Term
    else_term: Term


@dataclass(frozen=True)
class StepScore:
    """A ``score`` on a non-constant symbolic value: records ``value >= 0``."""

    value: SymVal
    term: Term


@dataclass(frozen=True)
class StepRecCall:
    """An application of the recursion marker to a value (CbV counting mode)."""

    argument: SymVal
    term: Term


@dataclass(frozen=True)
class StepStuck:
    """No rule applies."""

    reason: str


StepOutcome = Union[StepValue, StepTerm, StepBranch, StepScore, StepRecCall, StepStuck]


class SymbolicStepper:
    """Performs single symbolic reduction steps under a chosen strategy."""

    def __init__(
        self,
        strategy: Strategy = Strategy.CBN,
        registry: Optional[PrimitiveRegistry] = None,
    ) -> None:
        self.strategy = strategy
        self.registry = registry or default_registry()

    def step(self, term: Term, next_variable: int) -> StepOutcome:
        """Reduce the unique redex of ``term``; fresh samples use ``next_variable``."""
        if _is_symbolic_value(term):
            return StepValue()
        return self._step(term, next_variable)

    # The private helpers return outcomes whose continuation terms are the
    # *redex-local* results; contexts are rebuilt on the way out.

    def _step(self, term: Term, next_variable: int) -> StepOutcome:
        if isinstance(term, App):
            return self._step_app(term, next_variable)
        if isinstance(term, If):
            return self._step_if(term, next_variable)
        if isinstance(term, Prim):
            return self._step_prim(term, next_variable)
        if isinstance(term, Sample):
            return StepTerm(SymNumeral(SampleVar(next_variable)), consumed_sample=True)
        if isinstance(term, Score):
            return self._step_score(term, next_variable)
        if isinstance(term, Var):
            return StepStuck(f"free variable {term.name!r}")
        return StepStuck(f"cannot step term {term!r}")

    def _step_app(self, term: App, next_variable: int) -> StepOutcome:
        fn, arg = term.fn, term.arg
        if not _is_symbolic_value(fn):
            return self._in_context(
                self._step(fn, next_variable), lambda t: App(t, arg)
            )
        if self.strategy is Strategy.CBV and not _is_symbolic_value(arg):
            if isinstance(fn, (Lam, Fix, RecMarker)):
                return self._in_context(
                    self._step(arg, next_variable), lambda t: App(fn, t)
                )
        if isinstance(fn, RecMarker):
            argument = as_symbolic_value(arg)
            if argument is None and self.strategy is Strategy.CBV:
                return StepStuck("recursion marker applied to a non-numeric value")
            # The outcome of the recursive call is the unknown numeral ``star``
            # (Fig. 5); the continuation resumes with it in redex position.
            from repro.symbolic.values import StarVal

            return StepRecCall(
                argument if argument is not None else ConstVal(0),
                SymNumeral(StarVal()),
            )
        if isinstance(fn, Lam):
            if self.strategy is Strategy.CBV and not _is_symbolic_value(arg):
                return self._in_context(
                    self._step(arg, next_variable), lambda t: App(fn, t)
                )
            return StepTerm(substitute(fn.body, {fn.var: arg}))
        if isinstance(fn, Fix):
            if self.strategy is Strategy.CBV and not _is_symbolic_value(arg):
                return self._in_context(
                    self._step(arg, next_variable), lambda t: App(fn, t)
                )
            return StepTerm(substitute(fn.body, {fn.var: arg, fn.fvar: fn}))
        return StepStuck("application of a non-function value")

    def _step_if(self, term: If, next_variable: int) -> StepOutcome:
        guard = as_symbolic_value(term.cond)
        if guard is not None:
            if isinstance(guard, ConstVal):
                chosen = term.then if guard.value <= 0 else term.orelse
                return StepTerm(chosen)
            return StepBranch(guard, term.then, term.orelse)
        if _is_symbolic_value(term.cond):
            return StepStuck("conditional guard is not of type R")
        return self._in_context(
            self._step(term.cond, next_variable),
            lambda t: If(t, term.then, term.orelse),
        )

    def _step_prim(self, term: Prim, next_variable: int) -> StepOutcome:
        for index, argument in enumerate(term.args):
            if as_symbolic_value(argument) is not None:
                continue
            if _is_symbolic_value(argument):
                return StepStuck(f"primitive argument {index} is not of type R")
            prefix = term.args[:index]
            suffix = term.args[index + 1 :]
            return self._in_context(
                self._step(argument, next_variable),
                lambda t: Prim(term.op, prefix + (t,) + suffix),
            )
        values = [as_symbolic_value(argument) for argument in term.args]
        if any(value.contains_star() for value in values):
            # f(..., star, ...) reduces to star (Fig. 5).
            from repro.symbolic.values import StarVal

            return StepTerm(SymNumeral(StarVal()))
        try:
            result = simplify_prim(term.op, values, self.registry)
        except (ValueError, ZeroDivisionError, OverflowError) as error:
            return StepStuck(f"primitive {term.op!r} failed: {error}")
        return StepTerm(SymNumeral(result))

    def _step_score(self, term: Score, next_variable: int) -> StepOutcome:
        value = as_symbolic_value(term.arg)
        if value is not None:
            if isinstance(value, ConstVal):
                if value.value < 0:
                    return StepStuck("score of a negative constant")
                return StepTerm(SymNumeral(value))
            return StepScore(value, SymNumeral(value))
        if _is_symbolic_value(term.arg):
            return StepStuck("score argument is not of type R")
        return self._in_context(
            self._step(term.arg, next_variable), lambda t: Score(t)
        )

    @staticmethod
    def _in_context(outcome: StepOutcome, plug) -> StepOutcome:
        """Rebuild the surrounding evaluation context around an inner outcome."""
        if isinstance(outcome, StepTerm):
            return StepTerm(plug(outcome.term), outcome.consumed_sample)
        if isinstance(outcome, StepBranch):
            return StepBranch(outcome.guard, plug(outcome.then_term), plug(outcome.else_term))
        if isinstance(outcome, StepScore):
            return StepScore(outcome.value, plug(outcome.term))
        if isinstance(outcome, StepRecCall):
            return StepRecCall(outcome.argument, plug(outcome.term))
        return outcome


# ---------------------------------------------------------------------------
# Path exploration.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymbolicPath:
    """A terminating symbolic execution path.

    ``constraints`` characterise exactly the standard traces of length
    ``num_variables`` that follow this path; ``steps`` is the number of
    reduction steps to the value ``result`` and ``branches`` the conditional
    oracle (``True`` = left/then branch).
    """

    constraints: ConstraintSet
    num_variables: int
    steps: int
    result: Term
    branches: Tuple[bool, ...]


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of a bounded exploration of the symbolic execution tree."""

    terminated: Tuple[SymbolicPath, ...]
    unfinished: int
    stuck: int
    exhausted_path_budget: bool

    @property
    def complete(self) -> bool:
        """True iff every path reached a value within the budgets."""
        return self.unfinished == 0 and not self.exhausted_path_budget


@dataclass
class _Configuration:
    term: Term
    constraints: ConstraintSet
    next_variable: int
    steps: int
    branches: Tuple[bool, ...]


class SymbolicExplorer:
    """Enumerates terminating symbolic paths of a closed SPCF term."""

    def __init__(
        self,
        strategy: Strategy = Strategy.CBN,
        registry: Optional[PrimitiveRegistry] = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.stepper = SymbolicStepper(strategy, self.registry)

    def explore(
        self,
        term: Term,
        max_steps_per_path: int = 500,
        max_paths: int = 100_000,
    ) -> ExplorationResult:
        """Enumerate terminating paths with at most ``max_steps_per_path`` steps each.

        The exploration is a breadth-first traversal of the (binary) branching
        tree, so when the ``max_paths`` budget is exhausted the paths already
        returned are exactly those with the fewest branch decisions -- the
        bound is an anytime result that only improves with a larger budget.
        Paths still running when their step budget is exhausted are counted in
        ``unfinished`` so that callers know whether the returned set of paths
        is exhaustive up to that depth.
        """
        terminated: List[SymbolicPath] = []
        unfinished = 0
        stuck = 0
        exhausted = False
        pending: Deque[_Configuration] = deque(
            [_Configuration(term, ConstraintSet(), 0, 0, ())]
        )
        explored = 0
        while pending:
            if explored >= max_paths:
                exhausted = True
                break
            configuration = pending.popleft()
            explored += 1
            outcome = self._run_to_event(configuration, max_steps_per_path)
            kind, payload = outcome
            if kind == "terminated":
                terminated.append(payload)
            elif kind == "unfinished":
                unfinished += 1
            elif kind == "stuck":
                stuck += 1
            else:  # branch
                pending.extend(payload)
        return ExplorationResult(tuple(terminated), unfinished, stuck, exhausted)

    def _run_to_event(
        self, configuration: _Configuration, max_steps: int
    ) -> Tuple[str, object]:
        term = configuration.term
        constraints = configuration.constraints
        next_variable = configuration.next_variable
        steps = configuration.steps
        branches = configuration.branches
        while steps < max_steps:
            outcome = self.stepper.step(term, next_variable)
            if isinstance(outcome, StepValue):
                return (
                    "terminated",
                    SymbolicPath(constraints, next_variable, steps, term, branches),
                )
            if isinstance(outcome, StepTerm):
                term = outcome.term
                if outcome.consumed_sample:
                    next_variable += 1
                steps += 1
                continue
            if isinstance(outcome, StepScore):
                constraints = constraints.add(Constraint(outcome.value, Relation.GE))
                term = outcome.term
                steps += 1
                continue
            if isinstance(outcome, StepBranch):
                left = _Configuration(
                    outcome.then_term,
                    constraints.add(Constraint(outcome.guard, Relation.LE)),
                    next_variable,
                    steps + 1,
                    branches + (True,),
                )
                right = _Configuration(
                    outcome.else_term,
                    constraints.add(Constraint(outcome.guard, Relation.GT)),
                    next_variable,
                    steps + 1,
                    branches + (False,),
                )
                return ("branch", [left, right])
            if isinstance(outcome, StepRecCall):
                return ("stuck", "unexpected recursion marker during exploration")
            if isinstance(outcome, StepStuck):
                return ("stuck", outcome.reason)
            raise TypeError(f"unexpected step outcome {outcome!r}")
        return ("unfinished", None)
