"""Report generation: Table 1 / Table 2 style summaries as markdown.

The paper's evaluation is two tables; :mod:`repro.report` regenerates them
(and a combined AST/PAST classification table) as machine- and
human-readable markdown, which the CLI exposes as ``python -m repro report``
and the benchmark suite uses when writing ``EXPERIMENTS.md`` style records.
"""

from repro.report.tables import (
    classification_report,
    classification_rows_from_results,
    full_report,
    markdown_table,
    table1_report,
    table1_rows_from_results,
    table2_report,
    table2_rows_from_results,
)

__all__ = [
    "classification_report",
    "classification_rows_from_results",
    "full_report",
    "markdown_table",
    "table1_report",
    "table1_rows_from_results",
    "table2_report",
    "table2_rows_from_results",
]
