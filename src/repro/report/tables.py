"""Markdown renderings of the paper's evaluation tables.

Each report function runs the corresponding analysis over a program
dictionary (defaulting to the paper's Table 1 / Table 2 sets) and renders a
markdown table whose columns mirror the paper's: the certified lower bound
and exploration depth for Table 1, the computed ``Papprox`` and verdict for
Table 2, and the combined AST/PAST classification for the extension table.
Timings are wall-clock milliseconds on the current machine and are reported
for orientation only.

Each report accepts a shared :class:`~repro.geometry.engine.MeasureEngine`
(``full_report`` builds one for all sections), so constraint sets recurring
across Table 2 and the classification are measured once.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Sequence

from repro.astcheck import verify_ast
from repro.geometry.engine import MeasureEngine
from repro.lowerbound.engine import LowerBoundEngine
from repro.pastcheck import classify_termination
from repro.programs import table1_programs, table2_programs
from repro.programs.library import Program

__all__ = [
    "classification_report",
    "markdown_table",
    "table1_report",
    "table2_report",
]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render ``headers`` and ``rows`` as a GitHub-flavoured markdown table."""
    if not headers:
        raise ValueError("a table needs at least one column")
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"
    lines = [render_row(headers)]
    lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def table1_report(
    depth: int = 50,
    programs: Optional[Mapping[str, Program]] = None,
    max_paths: int = 100_000,
    measure_engine: Optional[MeasureEngine] = None,
) -> str:
    """Regenerate Table 1 (lower bounds on the probability of termination)."""
    programs = dict(programs) if programs is not None else table1_programs()
    measure_engine = measure_engine or MeasureEngine()
    rows = []
    for name, program in programs.items():
        engine = LowerBoundEngine(strategy=program.strategy, measure_engine=measure_engine)
        started = time.perf_counter()
        result = engine.lower_bound(program.applied, max_steps=depth, max_paths=max_paths)
        elapsed_ms = (time.perf_counter() - started) * 1000
        known = (
            f"{program.known_probability:.4f}"
            if program.known_probability is not None
            else "?"
        )
        rows.append(
            [
                name,
                known,
                f"{float(result.probability):.10f}",
                str(depth),
                str(result.path_count),
                f"{elapsed_ms:.0f}",
            ]
        )
    table = markdown_table(
        ["term", "Pterm", "lower bound", "depth", "paths", "t (ms)"], rows
    )
    return "## Table 1 — lower bounds on the probability of termination\n\n" + table


def table2_report(
    programs: Optional[Mapping[str, Program]] = None,
    measure_engine: Optional[MeasureEngine] = None,
) -> str:
    """Regenerate Table 2 (automatic AST verification with ``Papprox``)."""
    programs = dict(programs) if programs is not None else table2_programs()
    measure_engine = measure_engine or MeasureEngine()
    rows = []
    for name, program in programs.items():
        started = time.perf_counter()
        result = verify_ast(program, engine=measure_engine)
        elapsed_ms = (time.perf_counter() - started) * 1000
        rows.append(
            [
                name,
                "yes" if result.verified else "no",
                repr(result.papprox) if result.papprox is not None else "-",
                f"{elapsed_ms:.0f}",
            ]
        )
    table = markdown_table(["term", "AST verified", "Papprox", "t (ms)"], rows)
    return "## Table 2 — automatic AST verification\n\n" + table


def classification_report(
    programs: Optional[Mapping[str, Program]] = None,
    measure_engine: Optional[MeasureEngine] = None,
) -> str:
    """The combined AST/PAST classification of the benchmark programs.

    This extends the paper's tables with the PAST analyses of
    :mod:`repro.pastcheck`; nested or higher-order programs on which the
    counting analysis does not apply are reported as not verified.
    """
    programs = dict(programs) if programs is not None else table2_programs()
    measure_engine = measure_engine or MeasureEngine()
    rows: list = []
    for name, program in programs.items():
        classification = classify_termination(program, engine=measure_engine)
        expected_calls = classification.past.expected_calls_per_body
        rows.append(
            [
                name,
                classification.verdict.value,
                "-" if expected_calls is None else f"{float(expected_calls):.4f}",
            ]
        )
    table = markdown_table(
        ["term", "verdict", "worst-case E[calls per body]"], rows
    )
    return "## AST / PAST classification\n\n" + table


def full_report(depth: int = 50, measure_engine: Optional[MeasureEngine] = None) -> str:
    """Every report section, concatenated (used by ``python -m repro report``).

    One shared measure engine backs all sections: Table 2 and the
    classification verify the same programs, so the second pass is answered
    from the cache.
    """
    measure_engine = measure_engine or MeasureEngine()
    sections: Dict[str, str] = {
        "table1": table1_report(depth=depth, measure_engine=measure_engine),
        "table2": table2_report(measure_engine=measure_engine),
        "classification": classification_report(measure_engine=measure_engine),
    }
    return "\n\n".join(sections.values())
