"""Markdown renderings of the paper's evaluation tables.

Each report function runs the corresponding analysis over a program
dictionary (defaulting to the paper's Table 1 / Table 2 sets) and renders a
markdown table whose columns mirror the paper's: the certified lower bound
and exploration depth for Table 1, the computed ``Papprox`` and verdict for
Table 2, and the combined AST/PAST classification for the extension table.
Timings are wall-clock milliseconds on the current machine and are reported
for orientation only.

For the default program sets the analyses run as a batch through
:func:`repro.batch.run_batch`, so reports can fan out across cores
(``jobs``) and reuse a persistent :class:`~repro.batch.BatchCache`; the
tables themselves are rendered from the deterministic
:class:`~repro.batch.JobResult` payloads by the ``*_rows_from_results``
functions.  Custom program mappings (whose terms may not resolve through the
program library) take the direct in-process path with a shared
:class:`~repro.geometry.engine.MeasureEngine`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence

from repro.astcheck import verify_ast
from repro.batch.cache import BatchCache
from repro.batch.jobs import JobResult, decode_number
from repro.batch.runner import run_batch
from repro.batch.suites import (
    classify_suite,
    schedule_suite,
    table1_suite,
    table2_suite,
)
from repro.geometry.engine import MeasureEngine
from repro.geometry.stats import PerfStats
from repro.lowerbound.engine import LowerBoundEngine
from repro.pastcheck import classify_termination
from repro.programs import table1_programs
from repro.programs.library import Program

__all__ = [
    "classification_report",
    "classification_rows_from_results",
    "markdown_table",
    "table1_report",
    "table1_rows_from_results",
    "table1_schedule_report",
    "table1_schedule_rows_from_results",
    "table2_report",
    "table2_rows_from_results",
]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render ``headers`` and ``rows`` as a GitHub-flavoured markdown table."""
    if not headers:
        raise ValueError("a table needs at least one column")
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"
    lines = [render_row(headers)]
    lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def _known_probability(program: Optional[Program]) -> str:
    if program is not None and program.known_probability is not None:
        return f"{program.known_probability:.4f}"
    return "?"


def table1_rows_from_results(
    results: Sequence[JobResult],
    programs: Optional[Mapping[str, Program]] = None,
) -> List[List[str]]:
    """Table 1 rows from ``lower-bound`` job results (errors become rows too)."""
    programs = dict(programs) if programs is not None else table1_programs()
    rows = []
    for result in results:
        name = result.spec.program
        if not result.ok:
            rows.append([name, "?", f"error: {result.error}", "-", "-", "-"])
            continue
        payload = result.payload or {}
        probability = decode_number(payload.get("probability", 0))
        rows.append(
            [
                name,
                _known_probability(programs.get(name)),
                f"{float(probability):.10f}",
                str(result.spec.canonical_params()["depth"]),
                str(payload.get("path_count", "?")),
                f"{result.elapsed_ms:.0f}",
            ]
        )
    return rows


def table1_report(
    depth: int = 50,
    programs: Optional[Mapping[str, Program]] = None,
    max_paths: int = 100_000,
    measure_engine: Optional[MeasureEngine] = None,
    jobs: int = 1,
    cache: Optional[BatchCache] = None,
    stats_sink: Optional[PerfStats] = None,
) -> str:
    """Regenerate Table 1 (lower bounds on the probability of termination)."""
    if programs is None:
        report = run_batch(
            table1_suite(depth=depth, max_paths=max_paths),
            jobs=jobs,
            cache=cache,
            engine=measure_engine,
        )
        if stats_sink is not None:
            stats_sink.merge(report.stats)
        rows = table1_rows_from_results(report.results)
    else:
        programs = dict(programs)
        measure_engine = measure_engine or MeasureEngine()
        rows = []
        for name, program in programs.items():
            engine = LowerBoundEngine(
                strategy=program.strategy, measure_engine=measure_engine
            )
            started = time.perf_counter()
            result = engine.lower_bound(
                program.applied, max_steps=depth, max_paths=max_paths
            )
            elapsed_ms = (time.perf_counter() - started) * 1000
            rows.append(
                [
                    name,
                    _known_probability(program),
                    f"{float(result.probability):.10f}",
                    str(depth),
                    str(result.path_count),
                    f"{elapsed_ms:.0f}",
                ]
            )
    table = markdown_table(
        ["term", "Pterm", "lower bound", "depth", "paths", "t (ms)"], rows
    )
    return "## Table 1 — lower bounds on the probability of termination\n\n" + table


def table1_schedule_rows_from_results(
    results: Sequence[JobResult],
    programs: Optional[Mapping[str, Program]] = None,
) -> List[List[str]]:
    """Depth-column rows from ``lower-bound-schedule`` job results.

    One row per (program, scheduled depth), read off the job's recorded
    anytime trajectory -- the whole column is one incremental job, so the
    per-job timing is reported once, on the deepest row.
    """
    programs = dict(programs) if programs is not None else table1_programs()
    rows = []
    for result in results:
        name = result.spec.program
        if not result.ok:
            rows.append([name, "?", f"error: {result.error}", "-", "-", "-", "-"])
            continue
        payload = result.payload or {}
        trajectory = payload.get("trajectory", [])
        for position, point in enumerate(trajectory):
            final = position == len(trajectory) - 1
            probability = decode_number(point.get("probability", 0))
            gap = decode_number(point.get("anytime_gap", 0))
            rows.append(
                [
                    name if position == 0 else "",
                    _known_probability(programs.get(name)) if position == 0 else "",
                    f"{float(probability):.10f}",
                    str(point.get("depth", "?")),
                    str(point.get("path_count", "?")),
                    f"{float(gap):.3e}",
                    f"{result.elapsed_ms:.0f}" if final else "",
                ]
            )
    return rows


def table1_schedule_report(
    schedule: Sequence[int],
    max_paths: int = 100_000,
    target_gap=None,
    measure_engine: Optional[MeasureEngine] = None,
    jobs: int = 1,
    cache: Optional[BatchCache] = None,
    stats_sink: Optional[PerfStats] = None,
) -> str:
    """Table 1 with a depth column: one *incremental* job per program.

    Each program's schedule runs over a single resumable exploration
    session (suspended paths resume across depths, every terminated path is
    measured once), and the rendered bounds at each depth are bit-identical
    to from-scratch runs there.
    """
    report = run_batch(
        schedule_suite(schedule, max_paths=max_paths, target_gap=target_gap),
        jobs=jobs,
        cache=cache,
        engine=measure_engine,
    )
    if stats_sink is not None:
        stats_sink.merge(report.stats)
    table = markdown_table(
        ["term", "Pterm", "lower bound", "depth", "paths", "gap <=", "t (ms)"],
        table1_schedule_rows_from_results(report.results),
    )
    return (
        "## Table 1 — anytime lower bounds over a depth schedule\n\n" + table
    )


def table2_rows_from_results(results: Sequence[JobResult]) -> List[List[str]]:
    """Table 2 rows from ``verify`` job results."""
    rows = []
    for result in results:
        name = result.spec.program
        if not result.ok:
            rows.append([name, "no", f"error: {result.error}", "-"])
            continue
        payload = result.payload or {}
        rows.append(
            [
                name,
                "yes" if payload.get("verified") else "no",
                payload.get("papprox") or "-",
                f"{result.elapsed_ms:.0f}",
            ]
        )
    return rows


def table2_report(
    programs: Optional[Mapping[str, Program]] = None,
    measure_engine: Optional[MeasureEngine] = None,
    jobs: int = 1,
    cache: Optional[BatchCache] = None,
    stats_sink: Optional[PerfStats] = None,
) -> str:
    """Regenerate Table 2 (automatic AST verification with ``Papprox``)."""
    if programs is None:
        report = run_batch(
            table2_suite(), jobs=jobs, cache=cache, engine=measure_engine
        )
        if stats_sink is not None:
            stats_sink.merge(report.stats)
        rows = table2_rows_from_results(report.results)
    else:
        programs = dict(programs)
        measure_engine = measure_engine or MeasureEngine()
        rows = []
        for name, program in programs.items():
            started = time.perf_counter()
            result = verify_ast(program, engine=measure_engine)
            elapsed_ms = (time.perf_counter() - started) * 1000
            rows.append(
                [
                    name,
                    "yes" if result.verified else "no",
                    repr(result.papprox) if result.papprox is not None else "-",
                    f"{elapsed_ms:.0f}",
                ]
            )
    table = markdown_table(["term", "AST verified", "Papprox", "t (ms)"], rows)
    return "## Table 2 — automatic AST verification\n\n" + table


def classification_rows_from_results(results: Sequence[JobResult]) -> List[List[str]]:
    """Classification rows from ``classify`` job results."""
    rows = []
    for result in results:
        name = result.spec.program
        if not result.ok:
            rows.append([name, f"error: {result.error}", "-"])
            continue
        payload = result.payload or {}
        expected_calls = decode_number(payload.get("expected_calls_per_body"))
        rows.append(
            [
                name,
                payload.get("summary", "?"),
                "-" if expected_calls is None else f"{float(expected_calls):.4f}",
            ]
        )
    return rows


def classification_report(
    programs: Optional[Mapping[str, Program]] = None,
    measure_engine: Optional[MeasureEngine] = None,
    jobs: int = 1,
    cache: Optional[BatchCache] = None,
    stats_sink: Optional[PerfStats] = None,
) -> str:
    """The combined AST/PAST classification of the benchmark programs.

    This extends the paper's tables with the PAST analyses of
    :mod:`repro.pastcheck`; nested or higher-order programs on which the
    counting analysis does not apply are reported as not verified.
    """
    if programs is None:
        report = run_batch(
            classify_suite(), jobs=jobs, cache=cache, engine=measure_engine
        )
        if stats_sink is not None:
            stats_sink.merge(report.stats)
        rows = classification_rows_from_results(report.results)
    else:
        programs = dict(programs)
        measure_engine = measure_engine or MeasureEngine()
        rows = []
        for name, program in programs.items():
            classification = classify_termination(program, engine=measure_engine)
            expected_calls = classification.past.expected_calls_per_body
            rows.append(
                [
                    name,
                    classification.verdict.value,
                    "-" if expected_calls is None else f"{float(expected_calls):.4f}",
                ]
            )
    table = markdown_table(
        ["term", "verdict", "worst-case E[calls per body]"], rows
    )
    return "## AST / PAST classification\n\n" + table


def full_report(
    depth: int = 50,
    measure_engine: Optional[MeasureEngine] = None,
    jobs: int = 1,
    cache: Optional[BatchCache] = None,
    stats_sink: Optional[PerfStats] = None,
    schedule: Optional[Sequence[int]] = None,
    target_gap=None,
) -> str:
    """Every report section, concatenated (used by ``python -m repro report``).

    One shared measure engine backs all sections when the batch runs inline
    (``jobs <= 1``): Table 2 and the classification verify the same programs,
    so the second pass is answered from the cache.  With ``jobs > 1`` the
    sections fan out across worker processes, and with a ``cache`` the reuse
    persists across runs instead.  A ``schedule`` renders Table 1 in its
    anytime form (one incremental job per program, a depth column in the
    table) instead of the single-depth run.
    """
    measure_engine = measure_engine or MeasureEngine()
    sections: Dict[str, str] = {
        "table1": table1_schedule_report(
            schedule,
            target_gap=target_gap,
            measure_engine=measure_engine,
            jobs=jobs,
            cache=cache,
            stats_sink=stats_sink,
        )
        if schedule
        else table1_report(
            depth=depth,
            measure_engine=measure_engine,
            jobs=jobs,
            cache=cache,
            stats_sink=stats_sink,
        ),
        "table2": table2_report(
            measure_engine=measure_engine, jobs=jobs, cache=cache, stats_sink=stats_sink
        ),
        "classification": classification_report(
            measure_engine=measure_engine, jobs=jobs, cache=cache, stats_sink=stats_sink
        ),
    }
    return "\n\n".join(sections.values())
