"""Result objects of the lower-bound engine."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple, Union

from repro.geometry.measure import MeasureResult
from repro.symbolic.execute import SymbolicPath

Number = Union[Fraction, float]


@dataclass(frozen=True)
class PathMeasure:
    """One terminating symbolic path together with the measure of its trace set."""

    path: SymbolicPath
    measure: MeasureResult

    @property
    def weight(self) -> Number:
        return self.measure.value

    @property
    def steps(self) -> int:
        return self.path.steps


@dataclass(frozen=True)
class LowerBoundResult:
    """A certified lower bound on ``Pterm`` (and on ``Eterm``).

    ``probability`` is the sum of the path measures; by Thm. 3.4 it never
    exceeds the true probability of termination.  ``expected_steps`` is the
    measure-weighted sum of step counts over the same paths, a lower bound on
    the expected time to termination.  ``exhaustive`` records whether the
    exploration saw every path up to the requested depth (if not, the bound is
    still sound, just potentially weaker).
    """

    probability: Number
    expected_steps: Number
    paths: Tuple[PathMeasure, ...]
    max_steps: int
    exhaustive: bool
    exact_measures: bool

    measure_gap: Number = Fraction(0)
    """Certified slack attributable to the sweep budgets.

    The sum of ``upper - lower`` over the paths whose measures carry a
    certified sweep bracket: the undecided volume the subdivision budget
    left on the table at this exploration depth.  0 when every swept path
    resolved exactly; under the per-block sweep the gap shrinks dramatically
    against the joint sweep at equal budget, which is what the sweep
    benchmark tracks.  (Float polytope approximations carry no bracket and
    contribute nothing -- ``exact_measures`` still records their presence.)
    """

    @property
    def path_count(self) -> int:
        return len(self.paths)

    def anytime_gap(self) -> Number:
        """The certified slack an anytime schedule can still close.

        For an exhaustive exploration the only budget-attributable slack is
        the sweep bracket (:attr:`measure_gap`); while paths remain
        unexplored, ``1 - probability`` is the sound (if pessimistic) bound
        on what deeper budgets could still add, since ``Pterm <= 1``.  The
        incremental engine's schedule runner stops once this drops to the
        requested ``target_gap``.  (Float polytope approximations carry no
        bracket and are excluded, exactly as in :attr:`measure_gap`.)
        """
        if self.exhaustive:
            return self.measure_gap
        return Fraction(1) - self.probability

    def as_floats(self) -> Tuple[float, float]:
        return float(self.probability), float(self.expected_steps)

    def summary(self) -> str:
        """A one-line, Table-1-style summary of the result."""
        return (
            f"LB = {float(self.probability):.10f}  "
            f"(paths = {self.path_count}, depth = {self.max_steps}, "
            f"E[steps] >= {float(self.expected_steps):.3f})"
        )
