"""The lower-bound engine (Sec. 3, Sec. 7.1).

``LowerBoundEngine.lower_bound(term, max_steps)`` enumerates the terminating
symbolic paths of ``term`` whose length does not exceed ``max_steps`` and sums
the measures of their constraint sets.  Distinct terminating paths differ in
at least one branch decision, so their trace sets are disjoint and the sum is
sound (this is the executable counterpart of summing the weights of pairwise
compatible interval traces in Thm. 3.4).  Completeness (Thm. 3.8) shows up
operationally: as ``max_steps`` grows the bound converges to ``Pterm`` for
programs over interval-separable primitives.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Union

from repro.geometry.engine import MeasureEngine
from repro.geometry.measure import MeasureOptions
from repro.lowerbound.result import LowerBoundResult, PathMeasure
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import Term, free_variables
from repro.symbolic.execute import Strategy, SymbolicExplorer

Number = Union[Fraction, float]


class LowerBoundEngine:
    """Computes certified lower bounds on ``Pterm`` and ``Eterm``."""

    def __init__(
        self,
        strategy: Strategy = Strategy.CBN,
        registry: Optional[PrimitiveRegistry] = None,
        measure_options: Optional[MeasureOptions] = None,
        measure_engine: Optional[MeasureEngine] = None,
    ) -> None:
        self.strategy = strategy
        # A shared memoizing engine may be supplied so repeated or nested
        # analyses (e.g. the PAST classification) measure each distinct path
        # constraint set only once; by default every LowerBoundEngine owns a
        # private cache.  A given engine supersedes ``registry`` so that
        # exploration and measuring agree on primitive semantics.
        self.measure_engine = measure_engine or MeasureEngine(
            measure_options, registry or default_registry()
        )
        self.registry = self.measure_engine.registry
        self.measure_options = self.measure_engine.options
        self._explorer = SymbolicExplorer(strategy, self.registry)

    def lower_bound(
        self,
        term: Term,
        max_steps: int = 100,
        max_paths: int = 200_000,
    ) -> LowerBoundResult:
        """Compute a lower bound on ``Pterm(term)`` by depth-bounded exploration.

        ``max_steps`` is the per-path reduction-step budget (the ``d`` column
        of Table 1); ``max_paths`` caps the total number of explored paths as
        a safety valve for very wide programs.
        """
        if free_variables(term):
            raise ValueError("lower bounds are only defined for closed terms")
        exploration = self._explorer.explore(
            term, max_steps_per_path=max_steps, max_paths=max_paths
        )
        measured = []
        probability: Number = Fraction(0)
        expected_steps: Number = Fraction(0)
        measure_gap: Number = Fraction(0)
        exact = True
        for path in exploration.terminated:
            measure = self.measure_engine.measure(path.constraints, path.num_variables)
            if measure.upper is not None:
                # The sweep's undecided volume for this path: certified mass
                # the budget could not decide.  Measures without a recorded
                # bracket (e.g. float polytope approximations) contribute
                # nothing -- their slack is float-level, not budget-level.
                measure_gap = measure_gap + (measure.upper - measure.value)
            if measure.value == 0:
                continue
            measured.append(PathMeasure(path, measure))
            probability = probability + measure.value
            expected_steps = expected_steps + measure.value * path.steps
            exact = exact and measure.exact
        return LowerBoundResult(
            probability=probability,
            expected_steps=expected_steps,
            paths=tuple(measured),
            max_steps=max_steps,
            exhaustive=exploration.complete,
            exact_measures=exact,
            measure_gap=measure_gap,
        )


def lower_bound(
    term: Term,
    max_steps: int = 100,
    max_paths: int = 200_000,
    strategy: Strategy = Strategy.CBN,
    registry: Optional[PrimitiveRegistry] = None,
    measure_options: Optional[MeasureOptions] = None,
    measure_engine: Optional[MeasureEngine] = None,
) -> LowerBoundResult:
    """Convenience wrapper around :class:`LowerBoundEngine`."""
    engine = LowerBoundEngine(strategy, registry, measure_options, measure_engine)
    return engine.lower_bound(term, max_steps=max_steps, max_paths=max_paths)
