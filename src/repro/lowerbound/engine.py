"""The lower-bound engine (Sec. 3, Sec. 7.1).

``LowerBoundEngine.lower_bound(term, max_steps)`` enumerates the terminating
symbolic paths of ``term`` whose length does not exceed ``max_steps`` and sums
the measures of their constraint sets.  Distinct terminating paths differ in
at least one branch decision, so their trace sets are disjoint and the sum is
sound (this is the executable counterpart of summing the weights of pairwise
compatible interval traces in Thm. 3.4).  Completeness (Thm. 3.8) shows up
operationally: as ``max_steps`` grows the bound converges to ``Pterm`` for
programs over interval-separable primitives.

That convergence is inherently *anytime*, and the engine exposes it as such:
:meth:`LowerBoundEngine.session` opens a :class:`LowerBoundSession` whose
:meth:`~LowerBoundSession.extend` deepens the exploration incrementally -- the
suspended symbolic frontier is resumed instead of re-derived, and each
distinct terminated path is measured exactly once across the whole schedule.
Every intermediate :class:`~repro.lowerbound.result.LowerBoundResult` is
bit-identical to what a from-scratch ``lower_bound`` at the same depth would
return (the plain entry point is itself a one-extend session), so an anytime
schedule is purely a performance feature, never a numerical one.
:meth:`~LowerBoundSession.run_schedule` streams the monotone results of a
depth schedule with a ``target_gap``-driven early stop.

Invariants
----------

* **Soundness.**  Every emitted probability is a certified lower bound on
  ``Pterm``: path constraint sets of distinct terminating paths are
  disjoint, and inexact (swept) measures contribute their certified lower
  end, never an estimate.
* **Monotone anytime bounds.**  Along any non-decreasing depth schedule the
  reported bound is non-decreasing and the certified
  :meth:`~repro.lowerbound.result.LowerBoundResult.anytime_gap` is
  non-increasing; a ``target_gap`` early stop only ever stops *after* the
  guarantee is reached.
* **Bit-identity.**  Each intermediate result equals the from-scratch
  ``lower_bound`` at the same depth, byte for byte once JSON-encoded --
  sessions, shared measure engines, persistent caches and the analysis
  daemon can therefore be mixed freely without changing a single digit.
* **Session budgets are non-decreasing** (enforced, not assumed): a session
  asked to shrink its budget raises instead of silently re-exploring.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Optional, Union

import repro.telemetry as telemetry
from repro.geometry.engine import MeasureEngine
from repro.geometry.measure import MeasureOptions
from repro.lowerbound.result import LowerBoundResult, PathMeasure
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.spcf.syntax import Term, free_variables
from repro.symbolic.execute import Strategy, SymbolicExplorer

Number = Union[Fraction, float]


class LowerBoundSession:
    """A resumable anytime lower-bound computation for one closed term.

    The session pairs an :class:`~repro.symbolic.execute.ExplorationSession`
    (the suspended-path frontier) with a per-path measure memo: a terminated
    path discovered at one depth is never re-measured when deeper extends
    report it again, and never re-executed either.  ``extend(d)`` returns the
    same :class:`~repro.lowerbound.result.LowerBoundResult` -- bit for bit,
    path order included -- as a fresh ``lower_bound(term, max_steps=d)``.
    """

    def __init__(
        self,
        engine: "LowerBoundEngine",
        term: Term,
        max_paths: int = 200_000,
        exploration=None,
    ) -> None:
        if free_variables(term):
            raise ValueError("lower bounds are only defined for closed terms")
        self._engine = engine
        # ``exploration`` lets callers hand over a pre-built (typically
        # store-restored) ExplorationSession; the budget-monotonicity and
        # bit-identity invariants then hold across the hand-off, because the
        # restored session replays its history exactly.
        self._session = exploration or engine._explorer.session(
            term, max_paths=max_paths, stats=engine.measure_engine.stats
        )
        # Measures memoized per terminated path *object*: the exploration
        # session owns and retains every terminated path, so identity is a
        # sound (and allocation-free) key across extends.
        self._measured = {}

    @property
    def max_steps(self) -> int:
        """The deepest step budget reached so far."""
        return self._session.max_steps

    @property
    def exploration(self):
        """The underlying :class:`~repro.symbolic.execute.ExplorationSession`.

        Exposed so the distributed scheduler can encode, split and absorb the
        suspended frontier between extends.
        """
        return self._session

    def extend(self, max_steps: int) -> LowerBoundResult:
        """Deepen to ``max_steps`` and return the bound at that depth.

        Budgets are non-decreasing across extends.  The result equals a
        from-scratch :meth:`LowerBoundEngine.lower_bound` at the same depth;
        only the work differs (suspended paths resume, known paths replay
        their memoized measure).
        """
        exploration = self._session.extend(max_steps)
        measure_engine = self._engine.measure_engine
        measured = []
        probability: Number = Fraction(0)
        expected_steps: Number = Fraction(0)
        measure_gap: Number = Fraction(0)
        exact = True
        for path in exploration.terminated:
            measure = self._measured.get(id(path))
            if measure is None:
                measure = measure_engine.measure(path.constraints, path.num_variables)
                self._measured[id(path)] = measure
            if measure.upper is not None:
                # The sweep's undecided volume for this path: certified mass
                # the budget could not decide.  Measures without a recorded
                # bracket (e.g. float polytope approximations) contribute
                # nothing -- their slack is float-level, not budget-level.
                measure_gap = measure_gap + (measure.upper - measure.value)
            if measure.value == 0:
                continue
            measured.append(PathMeasure(path, measure))
            probability = probability + measure.value
            expected_steps = expected_steps + measure.value * path.steps
            exact = exact and measure.exact
        result = LowerBoundResult(
            probability=probability,
            expected_steps=expected_steps,
            paths=tuple(measured),
            max_steps=max_steps,
            exhaustive=exploration.complete,
            exact_measures=exact,
            measure_gap=measure_gap,
        )
        if telemetry.enabled():
            # One event per scheduled depth makes the anytime convergence
            # replayable: [lower, gap] as of this budget, per program.
            telemetry.emit(
                "anytime-bound",
                depth=max_steps,
                lower=float(probability),
                gap=float(result.anytime_gap()),
                paths=len(measured),
                exhaustive=exploration.complete,
            )
        return result

    def run_schedule(
        self,
        schedule: Iterable[int],
        target_gap: Optional[Number] = None,
    ) -> Iterator[LowerBoundResult]:
        """Stream the bounds of a non-decreasing depth schedule.

        One :class:`LowerBoundResult` is yielded per scheduled depth; the
        bounds are monotone in the schedule (deeper budgets only add path
        mass).  With a ``target_gap``, the schedule stops early as soon as
        :meth:`LowerBoundResult.anytime_gap` -- the certified slack deeper
        budgets could still close -- drops to the target.
        """
        for depth in schedule:
            result = self.extend(depth)
            yield result
            if target_gap is not None and result.anytime_gap() <= target_gap:
                return


class LowerBoundEngine:
    """Computes certified lower bounds on ``Pterm`` and ``Eterm``."""

    def __init__(
        self,
        strategy: Strategy = Strategy.CBN,
        registry: Optional[PrimitiveRegistry] = None,
        measure_options: Optional[MeasureOptions] = None,
        measure_engine: Optional[MeasureEngine] = None,
    ) -> None:
        self.strategy = strategy
        # A shared memoizing engine may be supplied so repeated or nested
        # analyses (e.g. the PAST classification) measure each distinct path
        # constraint set only once; by default every LowerBoundEngine owns a
        # private cache.  A given engine supersedes ``registry`` so that
        # exploration and measuring agree on primitive semantics.
        self.measure_engine = measure_engine or MeasureEngine(
            measure_options, registry or default_registry()
        )
        self.registry = self.measure_engine.registry
        self.measure_options = self.measure_engine.options
        self._explorer = SymbolicExplorer(
            strategy, self.registry, stats=self.measure_engine.stats
        )

    def session(
        self, term: Term, max_paths: int = 200_000, exploration=None
    ) -> LowerBoundSession:
        """Open a resumable anytime computation (see :class:`LowerBoundSession`).

        ``max_paths`` is fixed for the session's lifetime: the safety valve
        must mean the same thing at every depth of a schedule, and a capped
        session keeps (never drops) the paths beyond the cap, so every
        subsequent extend keeps reporting ``exhaustive=False``.  A
        store-restored ``exploration`` session may be handed over in place of
        a fresh frontier (see :class:`LowerBoundSession`).
        """
        return LowerBoundSession(
            self, term, max_paths=max_paths, exploration=exploration
        )

    def lower_bound(
        self,
        term: Term,
        max_steps: int = 100,
        max_paths: int = 200_000,
    ) -> LowerBoundResult:
        """Compute a lower bound on ``Pterm(term)`` by depth-bounded exploration.

        ``max_steps`` is the per-path reduction-step budget (the ``d`` column
        of Table 1); ``max_paths`` caps the total number of explored paths as
        a safety valve for very wide programs.
        """
        return self.session(term, max_paths=max_paths).extend(max_steps)

    def lower_bound_schedule(
        self,
        term: Term,
        schedule: Iterable[int],
        max_paths: int = 200_000,
        target_gap: Optional[Number] = None,
    ) -> Iterator[LowerBoundResult]:
        """Stream anytime bounds over a depth schedule (one incremental job).

        Convenience for :meth:`session` + :meth:`LowerBoundSession.run_schedule`;
        the per-depth results are bit-identical to independent
        :meth:`lower_bound` calls at the same depths, computed in a fraction
        of the exploration steps.
        """
        session = self.session(term, max_paths=max_paths)
        return session.run_schedule(schedule, target_gap=target_gap)


def lower_bound(
    term: Term,
    max_steps: int = 100,
    max_paths: int = 200_000,
    strategy: Strategy = Strategy.CBN,
    registry: Optional[PrimitiveRegistry] = None,
    measure_options: Optional[MeasureOptions] = None,
    measure_engine: Optional[MeasureEngine] = None,
) -> LowerBoundResult:
    """Convenience wrapper around :class:`LowerBoundEngine`."""
    engine = LowerBoundEngine(strategy, registry, measure_options, measure_engine)
    return engine.lower_bound(term, max_steps=max_steps, max_paths=max_paths)
