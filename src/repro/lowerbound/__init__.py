"""Lower bounds on the probability of termination and the expected runtime.

This is the paper's first prototype (Sec. 3 + Sec. 7.1): terminating symbolic
paths are enumerated up to a depth budget, the measure of each path's
constraint set is computed (exactly for affine constraints, by a certified
interval sweep otherwise), and the sum of those measures is a sound lower
bound on ``Pterm`` (Thm. 3.4); the measure-weighted sum of step counts is a
sound lower bound on ``Eterm``.
"""

from repro.lowerbound.engine import LowerBoundEngine, LowerBoundSession, lower_bound
from repro.lowerbound.result import LowerBoundResult, PathMeasure

__all__ = [
    "LowerBoundEngine",
    "LowerBoundResult",
    "LowerBoundSession",
    "PathMeasure",
    "lower_bound",
]
