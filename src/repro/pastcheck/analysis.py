"""Counting-based PAST verification, refutation, and classification.

The analyses here sit on top of the Sec. 5/6 machinery:

* :func:`verify_past` strengthens the AST verifier: when the worst-case
  counting distribution is a *sub-critical* offspring distribution (total
  mass 1, strictly less than one expected call), the recursion tree of every
  run is a branching process with finite expected total progeny
  ``1 / (1 - m)``; since one evaluation of the body performs boundedly many
  reduction steps (the execution tree is finite), the expected runtime is
  finite and the program is PAST on every argument.
* :func:`refute_past` uses the exact counting pattern: an argument-independent
  *critical or super-critical* offspring distribution (mean at least one call,
  not the call-free Dirac) has infinite expected total progeny, so the
  expected runtime is infinite and the program is not PAST -- even when, at
  criticality, it is AST (Ex. 1.1: program (2) at ``p = 1/2``).
* :func:`eterm_lower_bounds` reports the certified lower bounds on ``Eterm``
  produced by the interval-trace semantics (Thm. 3.4) at increasing depths;
  a refuted program's bounds grow without saturating.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple, Union

from repro.astcheck.exectree import ExecutionTree
from repro.astcheck.verifier import ASTVerificationResult, verify_ast
from repro.counting.pattern import CountingPatternResult, counting_pattern_exact
from repro.counting.progress import guards_independent_of_recursion
from repro.geometry.engine import MeasureEngine
from repro.geometry.measure import MeasureOptions
from repro.lowerbound.engine import LowerBoundEngine
from repro.randomwalk.step_distribution import CountingDistribution
from repro.spcf.primitives import PrimitiveRegistry
from repro.spcf.syntax import Fix, Term
from repro.symbolic.execute import Strategy

Number = Union[Fraction, float]

__all__ = [
    "EtermLowerBoundPoint",
    "PASTRefutationResult",
    "PASTVerificationResult",
    "TerminationClass",
    "TerminationClassification",
    "classify_termination",
    "eterm_lower_bounds",
    "expected_total_calls",
    "refute_past",
    "verify_past",
]

_FLOAT_TOLERANCE = 1e-9


def expected_total_calls(distribution: CountingDistribution) -> Union[Fraction, float]:
    """The expected total number of calls of the recursion tree (root included).

    For an offspring distribution with mean ``m`` the expected total progeny
    of the branching process is ``1 / (1 - m)`` when ``m < 1`` and infinite
    otherwise.
    """
    mean = distribution.expected_calls
    if mean >= 1:
        return float("inf")
    if isinstance(mean, Fraction):
        return Fraction(1) / (1 - mean)
    return 1.0 / (1.0 - float(mean))


def _as_fix(program: Union[Fix, object]) -> Fix:
    fix = program if isinstance(program, Fix) else getattr(program, "fix", None)
    if not isinstance(fix, Fix):
        raise TypeError("expected a Fix term or a Program with a .fix attribute")
    return fix


# ---------------------------------------------------------------------------
# Verification (sub-critical worst case implies PAST).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PASTVerificationResult:
    """Outcome of the counting-based PAST verification."""

    verified: bool
    ast_result: ASTVerificationResult
    papprox: Optional[CountingDistribution]
    expected_calls_per_body: Optional[Number]
    expected_total_calls: Optional[Union[Fraction, float]]
    body_tree_depth: Optional[int]
    reasons: Tuple[str, ...]

    def summary(self) -> str:
        if self.verified:
            return (
                "PAST verified; expected calls per body = "
                f"{self.expected_calls_per_body}, expected total calls = "
                f"{self.expected_total_calls}"
            )
        return "PAST not verified: " + "; ".join(self.reasons)


def verify_past(
    program: Union[Fix, object],
    max_steps: int = 2_000,
    measure_options: Optional[MeasureOptions] = None,
    registry: Optional[PrimitiveRegistry] = None,
    engine: Optional[MeasureEngine] = None,
) -> PASTVerificationResult:
    """Verify PAST (on every argument) via a sub-critical worst-case counting
    distribution.

    Soundness: by Thm. 6.2 ``Papprox`` is below every member of the counting
    pattern in the cumulative order, so the mean number of calls of every
    member is at most the mean of ``Papprox`` plus the missing mass times the
    rank; requiring total mass 1 and mean strictly below 1 therefore makes
    every recursion tree a sub-critical branching process.

    ``engine`` is the shared memoizing measure engine; when the AST verifier
    already ran with the same engine, the embedded ``verify_ast`` call here
    answers every measure from the cache.
    """
    fix = _as_fix(program)
    engine = engine or MeasureEngine(measure_options, registry)
    ast_result = verify_ast(fix, max_steps=max_steps, engine=engine)
    reasons = list(ast_result.reasons)
    if not ast_result.verified or ast_result.papprox is None:
        reasons.insert(0, "AST verification did not succeed")
        return PASTVerificationResult(
            verified=False,
            ast_result=ast_result,
            papprox=ast_result.papprox,
            expected_calls_per_body=None,
            expected_total_calls=None,
            body_tree_depth=_tree_depth(ast_result.tree),
            reasons=tuple(reasons),
        )
    papprox = ast_result.papprox
    total = papprox.total_mass
    mean = papprox.expected_calls
    exact = ast_result.exact
    mass_ok = total == 1 if exact else abs(float(total) - 1.0) <= _FLOAT_TOLERANCE
    subcritical = mean < 1 if exact else float(mean) < 1.0 - _FLOAT_TOLERANCE
    if not mass_ok:
        reasons.append(
            f"the worst-case counting distribution has mass {float(total):.6f} < 1; "
            "the sub-criticality argument needs the full mass"
        )
    if not subcritical:
        reasons.append(
            f"the worst-case expected number of calls is {float(mean):.6f} >= 1 "
            "(critical or super-critical recursion; expected progeny may be infinite)"
        )
    verified = mass_ok and subcritical
    return PASTVerificationResult(
        verified=verified,
        ast_result=ast_result,
        papprox=papprox,
        expected_calls_per_body=mean,
        expected_total_calls=expected_total_calls(papprox) if verified else None,
        body_tree_depth=_tree_depth(ast_result.tree),
        reasons=tuple(reasons),
    )


def _tree_depth(tree: Optional[ExecutionTree]) -> Optional[int]:
    if tree is None:
        return None
    # A coarse per-call work bound: the number of nodes of the body's
    # execution tree (every path of one body evaluation visits fewer nodes).
    return tree.node_count


# ---------------------------------------------------------------------------
# Refutation (critical / super-critical exact pattern implies not PAST).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PASTRefutationResult:
    """Outcome of the counting-based PAST refutation."""

    refuted: bool
    patterns: Tuple[CountingPatternResult, ...]
    arguments: Tuple[Union[Fraction, float, int], ...]
    argument_independent: bool
    expected_calls_per_body: Optional[Number]
    reasons: Tuple[str, ...]

    def summary(self) -> str:
        if self.refuted:
            return (
                "not PAST: the counting pattern makes "
                f"{float(self.expected_calls_per_body):.4f} calls in expectation"
            )
        return "PAST not refuted: " + "; ".join(self.reasons)


def refute_past(
    program: Union[Fix, object],
    arguments: Sequence[Union[Fraction, float, int]] = (0, 1, 2, 5, 10),
    max_steps: int = 2_000,
    registry: Optional[PrimitiveRegistry] = None,
    engine: Optional[MeasureEngine] = None,
) -> PASTRefutationResult:
    """Refute PAST via a critical or super-critical exact counting pattern.

    The refutation is sound only when the counting pattern does not depend on
    the actual argument (every call then spawns i.i.d. offspring); the check
    compares the exact patterns at the supplied sample arguments and refuses
    to conclude anything when they differ or when any run got stuck.
    """
    fix = _as_fix(program)
    engine = engine or MeasureEngine(registry=registry)
    registry = engine.registry
    reasons = []
    progress = guards_independent_of_recursion(fix)
    if not progress.ok:
        return PASTRefutationResult(
            refuted=False,
            patterns=(),
            arguments=tuple(arguments),
            argument_independent=False,
            expected_calls_per_body=None,
            reasons=(f"progress check failed: {progress.reason}",),
        )
    patterns = tuple(
        counting_pattern_exact(
            fix, argument, max_steps=max_steps, registry=registry, engine=engine
        )
        for argument in arguments
    )
    if not patterns:
        return PASTRefutationResult(
            refuted=False,
            patterns=(),
            arguments=(),
            argument_independent=False,
            expected_calls_per_body=None,
            reasons=("no sample arguments supplied",),
        )
    if any(not pattern.complete or pattern.stuck_paths for pattern in patterns):
        reasons.append("some run of the body was not fully analysed")
    distributions = [pattern.distribution.as_dict() for pattern in patterns]
    argument_independent = all(entry == distributions[0] for entry in distributions)
    if not argument_independent:
        reasons.append(
            "the counting pattern depends on the actual argument; the i.i.d. "
            "branching-process argument does not apply"
        )
    reference = patterns[0].distribution
    total = reference.total_mass
    mean = reference.expected_calls
    if total != 1:
        reasons.append(
            f"the counting pattern has total mass {float(total):.6f} < 1"
        )
    if reference.support() == (0,):
        reasons.append("the body never recurses; the program is trivially PAST")
    critical_or_super = mean >= 1
    if not critical_or_super:
        reasons.append(
            f"the expected number of calls is {float(mean):.6f} < 1 (sub-critical)"
        )
    refuted = (
        argument_independent
        and not reasons
        and critical_or_super
    )
    return PASTRefutationResult(
        refuted=refuted,
        patterns=patterns,
        arguments=tuple(arguments),
        argument_independent=argument_independent,
        expected_calls_per_body=mean,
        reasons=tuple(reasons),
    )


# ---------------------------------------------------------------------------
# Eterm lower bounds across depths (Thm. 3.4).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EtermLowerBoundPoint:
    """One certified ``(Pterm, Eterm)`` lower-bound pair at a given depth."""

    depth: int
    probability: Number
    expected_steps: Number


def eterm_lower_bounds(
    term: Term,
    depths: Sequence[int] = (20, 40, 60),
    strategy: Strategy = Strategy.CBN,
    registry: Optional[PrimitiveRegistry] = None,
    measure_options: Optional[MeasureOptions] = None,
    measure_engine: Optional[MeasureEngine] = None,
) -> Tuple[EtermLowerBoundPoint, ...]:
    """Certified lower bounds on ``Pterm`` and ``Eterm`` at increasing depths.

    Each point is sound by Thm. 3.4; for programs that are AST but not PAST
    the expected-steps column keeps growing with the depth instead of
    saturating.  A deeper exploration revisits every shallower path, so with
    the (default) shared memoizing measure engine each path constraint set is
    measured once across all depths.
    """
    engine = LowerBoundEngine(
        strategy=strategy,
        registry=registry,
        measure_options=measure_options,
        measure_engine=measure_engine,
    )
    points = []
    for depth in depths:
        result = engine.lower_bound(term, max_steps=depth)
        points.append(
            EtermLowerBoundPoint(
                depth=depth,
                probability=result.probability,
                expected_steps=result.expected_steps,
            )
        )
    return tuple(points)


# ---------------------------------------------------------------------------
# Classification.
# ---------------------------------------------------------------------------


class TerminationClass(enum.Enum):
    """The overall verdict of the combined AST/PAST analyses."""

    PAST_VERIFIED = "PAST (and hence AST) verified"
    AST_NOT_PAST = "AST verified; not PAST"
    AST_PAST_UNKNOWN = "AST verified; PAST unknown"
    UNKNOWN = "not verified"


@dataclass(frozen=True)
class TerminationClassification:
    """The combined result of the AST verifier and the PAST analyses."""

    verdict: TerminationClass
    ast: ASTVerificationResult
    past: PASTVerificationResult
    refutation: PASTRefutationResult

    def summary(self) -> str:
        return self.verdict.value


def classify_termination(
    program: Union[Fix, object],
    arguments: Sequence[Union[Fraction, float, int]] = (0, 1, 2, 5, 10),
    max_steps: int = 2_000,
    measure_options: Optional[MeasureOptions] = None,
    registry: Optional[PrimitiveRegistry] = None,
    engine: Optional[MeasureEngine] = None,
) -> TerminationClassification:
    """Combine the Sec. 6 AST verifier with the PAST analyses of this module.

    One :class:`MeasureEngine` (created here unless supplied) backs both the
    verification and the refutation, so constraint sets shared between the
    execution tree's paths and the per-argument counting patterns are
    measured a single time.
    """
    engine = engine or MeasureEngine(measure_options, registry)
    past = verify_past(program, max_steps=max_steps, engine=engine)
    refutation = refute_past(
        program, arguments=arguments, max_steps=max_steps, engine=engine
    )
    ast = past.ast_result
    if past.verified:
        verdict = TerminationClass.PAST_VERIFIED
    elif ast.verified and refutation.refuted:
        verdict = TerminationClass.AST_NOT_PAST
    elif ast.verified:
        verdict = TerminationClass.AST_PAST_UNKNOWN
    else:
        verdict = TerminationClass.UNKNOWN
    return TerminationClassification(
        verdict=verdict, ast=ast, past=past, refutation=refutation
    )
