"""Positive almost-sure termination (PAST) analysis.

The paper characterises PAST recursion-theoretically (Thm. 3.10: ``Sigma^0_2``
for AST programs) and its lower-bound machinery (Thm. 3.4) bounds ``Eterm``
from below; this package adds the natural counting-based *upper* route:

* if the worst-case counting distribution ``Papprox`` has total mass 1 and
  makes strictly fewer than one recursive call in expectation, then the
  recursion tree is a subcritical branching process, the expected number of
  calls is finite, and (the body doing boundedly many steps per call) the
  program is PAST -- :func:`verify_past`;
* if the exact counting pattern is argument independent, complete, and makes
  at least one call in expectation (without being call-free), the expected
  number of calls is infinite and the program is *not* PAST even when it is
  AST -- :func:`refute_past` (Ex. 1.1 (2) at the critical ``p = 1/2``);
* :func:`eterm_lower_bounds` tracks the certified ``Eterm`` lower bounds of
  the interval semantics across exploration depths, and
  :func:`classify_termination` combines everything with the Sec. 6 AST
  verifier into a single verdict.
"""

from repro.pastcheck.analysis import (
    EtermLowerBoundPoint,
    PASTRefutationResult,
    PASTVerificationResult,
    TerminationClass,
    TerminationClassification,
    classify_termination,
    eterm_lower_bounds,
    expected_total_calls,
    refute_past,
    verify_past,
)

__all__ = [
    "EtermLowerBoundPoint",
    "PASTRefutationResult",
    "PASTVerificationResult",
    "TerminationClass",
    "TerminationClassification",
    "classify_termination",
    "eterm_lower_bounds",
    "expected_total_calls",
    "refute_past",
    "verify_past",
]
