"""Command-line interface for the reproduction.

The CLI exposes the two analyses the paper ships as prototypes, plus the
Monte-Carlo estimator, over programs written in the surface syntax of
:mod:`repro.spcf.parser` or taken from the built-in benchmark library::

    python -m repro lower-bound "(mu phi x. if sample - 1/2 then x else phi (x+1)) 1" --depth 80
    python -m repro lower-bound "geo(1/2)" --schedule 20,40,80 --target-gap 1/1000
    python -m repro verify "mu phi x. if sample - 1/2 then x else phi (phi (x+1))"
    python -m repro estimate --program "ex1.1(1/4)" --runs 5000 --seed 7
    python -m repro table1 --depth 50 --jobs 4 --cache-dir .repro-cache
    python -m repro table1 --schedule 20,35,50
    python -m repro table2
    python -m repro batch --suite all --jobs 4 --cache-dir .repro-cache --output results.jsonl
    python -m repro doctor --cache-dir .repro-cache
    python -m repro list-programs

Anytime mode: ``--schedule d1,d2,...`` runs the lower-bound analyses as one
*incremental* computation per program -- the symbolic frontier suspended at
one depth resumes at the next, every terminated path is measured exactly
once, and an intermediate bound is streamed per scheduled depth (each one
bit-identical to a from-scratch run at that depth).  ``--target-gap`` stops
a schedule early once the certified anytime gap drops to the target, and
``--stats-json PATH`` dumps the engine's performance counters (including
``frontier_peak`` / ``paths_resumed`` / ``sweep_warm_starts``) as JSON.

Program arguments may be either a source string or the name of a benchmark
program (as listed by ``list-programs``).

The measuring commands build one shared
:class:`~repro.geometry.engine.MeasureEngine` per invocation, so every
analysis a command runs draws from a single memoized measure cache; pass
``--no-measure-cache`` to disable memoization (results are bit-identical,
only slower), ``--no-block-memo`` to memoize whole sets without the
block decomposition, and ``--stats`` to print the engine's
:class:`~repro.geometry.stats.PerfStats` counters after the run.
Non-affine constraint sets are swept block by block by default, which
tightens emitted lower bounds; ``--no-block-sweep`` restores the joint
full-dimensional sweep, and ``--sweep-depth``, ``--sweep-gap`` and
``--sweep-max-boxes`` tune the adaptive refinement budget.
``python -m repro batch prune --cache-dir ... --keep-runs N`` garbage-
collects persistent measure/sweep entries untouched for N runs.

The evaluation commands (``table1``, ``table2``, ``report``) and the generic
``batch`` command run through :mod:`repro.batch`: ``--jobs N`` fans the
analyses out across worker processes and ``--cache-dir`` persists both
finished job results and measure-engine entries across runs, so re-running
an unchanged batch is near-instant and bit-identical.

Worker pools are supervised: ``--job-timeout`` bounds each job's wall
clock, transient failures (a dead worker, a timeout) are retried with
exponential backoff (``--max-retries`` / ``--retry-backoff``), and the
persistent store checksums every file, quarantining damage instead of
silently missing.  ``python -m repro doctor --cache-dir ...`` reports store
health and exits non-zero on damage.

Telemetry: every measuring command accepts ``--trace PATH``, streaming a
versioned JSONL event log (spans, anytime bounds, job lifecycle, recovery
events) to PATH while the run computes *exactly* the same results --
tracing never perturbs outputs.  ``python -m repro trace summarize PATH``
renders a finished trace (``--check-stats-json`` cross-checks its recovery
events against a ``--stats-json`` dump); ``python -m repro trace watch
PATH`` follows a live one.  ``doctor --trace PATH`` validates the file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from fractions import Fraction
from typing import Optional, Sequence, Tuple

import repro.telemetry as telemetry
from repro.astcheck import verify_ast
from repro.astcheck.exectree import render_tree
from repro.batch import (
    JobResult,
    RetryPolicy,
    load_job_file,
    run_batch,
    scan_results_jsonl,
    suite,
    write_results_jsonl,
)
from repro.batch.suites import SUITE_NAMES
from repro.config import ReproConfig
from repro.geometry.engine import MeasureEngine
from repro.geometry.measure import MeasureOptions
from repro.lowerbound import LowerBoundEngine
from repro.pastcheck import classify_termination
from repro.programs import all_programs as _all_programs
from repro.programs import resolve_program as _resolve_program
from repro.report import full_report
from repro.semantics import estimate_termination
from repro.spcf import pretty, typecheck
from repro.symbolic.execute import Strategy


def _config(arguments: argparse.Namespace) -> ReproConfig:
    """The one shared knob object every command reads its flags through."""
    return ReproConfig.from_args(arguments)


def _measure_options(arguments: argparse.Namespace) -> MeasureOptions:
    """The measure options a command selected (defaults when flagless)."""
    return _config(arguments).measure_options()


def _measure_engine(arguments: argparse.Namespace) -> MeasureEngine:
    """The per-command shared measure engine, honouring ``--no-measure-cache``,
    ``--no-block-memo``, ``--no-block-sweep`` and the sweep budget flags."""
    return _config(arguments).measure_engine()


def _schedule_argument(text: str) -> Tuple[int, ...]:
    """Parse ``--schedule d1,d2,...`` into a validated depth tuple."""
    try:
        schedule = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"schedule must be comma-separated integers, got {text!r}"
        )
    if not schedule or schedule[0] <= 0 or any(
        second < first for first, second in zip(schedule, schedule[1:])
    ):
        raise argparse.ArgumentTypeError(
            f"schedule must be non-empty, positive and non-decreasing, got {text!r}"
        )
    return schedule


def _target_gap_without_schedule(arguments: argparse.Namespace) -> bool:
    """``--target-gap`` only means something for a schedule: reject it loudly
    rather than silently running the fixed-depth analysis without a stop
    rule (job files carry their own per-job ``target_gap`` params)."""
    if getattr(arguments, "target_gap", None) is None:
        return False
    if getattr(arguments, "schedule", None):
        return False
    if getattr(arguments, "job_file", None):
        return False
    print(
        f"{arguments.command}: --target-gap requires --schedule", file=sys.stderr
    )
    return True


def _write_stats_json(arguments: argparse.Namespace, stats) -> None:
    """``--stats-json PATH``: dump the engine counters machine-readably."""
    path = getattr(arguments, "stats_json", None)
    if not path:
        return
    document = {"version": 1, "counters": stats.as_dict()}
    with open(path, "w") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")


def _print_perf_stats(arguments: argparse.Namespace, stats) -> None:
    # Every measuring command ends here, so an armed trace always closes
    # with one final counters snapshot (the summarizer's hit-rate source).
    telemetry.emit_counters(stats)
    if getattr(arguments, "stats", False):
        print("measure engine statistics:")
        for line in stats.summary().splitlines():
            print(f"  {line}")
    _write_stats_json(arguments, stats)


def _print_stats(arguments: argparse.Namespace, engine: MeasureEngine) -> None:
    _print_perf_stats(arguments, engine.stats)


def _warn_explore_jobs_unused(arguments: argparse.Namespace) -> None:
    """``--explore-jobs`` only acts on a store-backed schedule; say so."""
    if not getattr(arguments, "explore_jobs", None):
        return
    if arguments.explore_jobs > 1 and not getattr(arguments, "cache_dir", None):
        print(
            f"{arguments.command}: --explore-jobs needs --cache-dir (the "
            "sharded frontier lives in the store); running single-process",
            file=sys.stderr,
        )
    elif arguments.explore_jobs > 1 and not getattr(arguments, "schedule", None):
        print(
            f"{arguments.command}: --explore-jobs only distributes a "
            "--schedule; running single-process",
            file=sys.stderr,
        )


def _command_lower_bound(arguments: argparse.Namespace) -> int:
    if _target_gap_without_schedule(arguments):
        return 2
    _warn_explore_jobs_unused(arguments)
    program = _resolve_program(arguments.program)
    telemetry.set_context(program=arguments.program)
    strategy = Strategy.CBV if arguments.cbv else program.strategy
    measure_engine = _measure_engine(arguments)
    engine = LowerBoundEngine(strategy=strategy, measure_engine=measure_engine)
    print(f"program      : {pretty(program.applied, unicode_symbols=False)}")
    print(f"type         : {typecheck(program.applied)!r}")
    start = time.perf_counter()
    config = _config(arguments)
    if arguments.schedule and config.cache_dir:
        # Store-backed anytime mode: the exploration frontier is persisted
        # under a budget-independent key after every depth, so a rerun (or a
        # crash) resumes the math -- already-reached depths replay from the
        # recorded trajectory, deeper ones continue stepping where the
        # persisted budget stopped.  ``--explore-jobs N`` additionally
        # shards each deepening across N supervised workers.  Either way
        # every line is bit-identical to a from-scratch run at that depth.
        from repro.batch.distribute import run_distributed_schedule
        from repro.batch.jobs import decode_number

        def on_depth(outcome) -> None:
            row = outcome.row
            elapsed = time.perf_counter() - start
            note = "replayed" if outcome.replayed else f"{elapsed * 1000:.1f} ms"
            print(
                f"depth {row['depth']:>6d} : "
                f"LB = {float(decode_number(row['probability'])):.10f}  "
                f"paths = {row['path_count']:<6d} "
                f"gap <= {float(decode_number(row['anytime_gap'])):.3e}  "
                f"({note})"
            )

        report = run_distributed_schedule(
            arguments.program,
            program,
            arguments.schedule,
            store=config.open_store(),
            engine=measure_engine,
            jobs=config.effective_explore_jobs(),
            strategy=strategy,
            target_gap=arguments.target_gap,
            job_timeout=config.job_timeout,
            retry_policy=config.retry_policy(),
            on_depth=on_depth,
        )
        elapsed = time.perf_counter() - start
        final = report.rows[-1]
        probability = decode_number(final["probability"])
        print(f"lower bound  : {float(probability):.10f}")
        if final["exact_measures"]:
            print(f"  exactly    : {probability}")
        else:
            print(f"measure gap  : {float(decode_number(final['measure_gap'])):.3e}")
        print(f"E[steps] >=  : {float(decode_number(final['expected_steps'])):.4f}")
        print(f"paths        : {final['path_count']} (exhaustive: {final['exhaustive']})")
        print(f"depth        : {final['depth']}")
        print(f"time         : {elapsed * 1000:.1f} ms")
        if report.resumed:
            print(f"resumed      : frontier restored at depth {report.restored_depth}")
        if report.jobs > 1:
            sharded = sum(outcome.shards for outcome in report.outcomes)
            stolen = sum(outcome.stolen for outcome in report.outcomes)
            print(f"workers      : {report.jobs} ({sharded} shards, {stolen} stolen)")
        _print_stats(arguments, measure_engine)
        return 0
    if arguments.schedule:
        # Anytime mode: one resumable session streams a bound per scheduled
        # depth; each line is bit-identical to a from-scratch run there.
        session = engine.session(program.applied)
        result = None
        for result in session.run_schedule(
            arguments.schedule, target_gap=arguments.target_gap
        ):
            elapsed = time.perf_counter() - start
            print(
                f"depth {result.max_steps:>6d} : "
                f"LB = {float(result.probability):.10f}  "
                f"paths = {result.path_count:<6d} "
                f"gap <= {float(result.anytime_gap()):.3e}  "
                f"({elapsed * 1000:.1f} ms)"
            )
        depth = result.max_steps
    else:
        result = engine.lower_bound(program.applied, max_steps=arguments.depth)
        depth = arguments.depth
    elapsed = time.perf_counter() - start
    print(f"lower bound  : {float(result.probability):.10f}")
    if result.exact_measures:
        print(f"  exactly    : {result.probability}")
    else:
        print(f"measure gap  : {float(result.measure_gap):.3e}")
    print(f"E[steps] >=  : {float(result.expected_steps):.4f}")
    print(f"paths        : {result.path_count} (exhaustive: {result.exhaustive})")
    print(f"depth        : {depth}")
    print(f"time         : {elapsed * 1000:.1f} ms")
    _print_stats(arguments, measure_engine)
    return 0


def _command_verify(arguments: argparse.Namespace) -> int:
    program = _resolve_program(arguments.program)
    telemetry.set_context(program=arguments.program)
    engine = _measure_engine(arguments)
    start = time.perf_counter()
    result = verify_ast(program, engine=engine)
    elapsed = time.perf_counter() - start
    print(f"program      : {pretty(program.fix, unicode_symbols=False)}")
    print(f"verdict      : {'AST verified' if result.verified else 'not verified'}")
    print(f"Papprox      : {result.papprox}")
    print(f"rank         : {result.rank}")
    print(f"time         : {elapsed * 1000:.1f} ms")
    if result.reasons:
        for reason in result.reasons:
            print(f"  note       : {reason}")
    if arguments.tree and result.tree is not None:
        print("execution tree:")
        print(render_tree(result.tree))
    _print_stats(arguments, engine)
    return 0 if result.verified else 1


def _command_estimate(arguments: argparse.Namespace) -> int:
    program = _resolve_program(arguments.program)
    estimate = estimate_termination(
        program.applied,
        runs=arguments.runs,
        max_steps=arguments.max_steps,
        seed=arguments.seed,
    )
    low, high = estimate.confidence_interval()
    print(f"program      : {pretty(program.applied, unicode_symbols=False)}")
    print(f"Pterm (MC)   : {estimate.probability:.4f}  (99% CI [{low:.4f}, {high:.4f}])")
    if estimate.mean_steps is not None:
        print(f"mean steps   : {estimate.mean_steps:.1f}")
        print(f"mean samples : {estimate.mean_samples:.1f}")
    if arguments.stats_json:
        # The MC estimator never measures constraint sets, so its dump is
        # the sampler's own statistics rather than PerfStats counters.
        document = {
            "version": 1,
            "analysis": "estimate",
            "probability": estimate.probability,
            "terminated": estimate.terminated,
            "runs": estimate.runs,
            "mean_steps": estimate.mean_steps,
            "mean_samples": estimate.mean_samples,
            "stderr": estimate.stderr,
            "seed": arguments.seed,
        }
        with open(arguments.stats_json, "w") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
    return 0


def _batch_cache(arguments: argparse.Namespace):
    """The persistent store ``--cache-dir``/``--store`` select (or ``None``)."""
    return _config(arguments).open_store()


def _nondefault_engine_flags(arguments: argparse.Namespace) -> bool:
    """Whether any flag selecting a non-default engine configuration is set."""
    return _config(arguments).nondefault_engine()


def _batch_jobs(arguments: argparse.Namespace, default: int = 1) -> int:
    """The worker count; any non-default engine flag forces inline execution
    (worker processes build default engines, which would ignore the flags)."""
    return _config(arguments).effective_jobs(default=default)


def _print_batch_stats(
    arguments: argparse.Namespace, report, engine: Optional[MeasureEngine]
) -> None:
    """``--stats`` for batched commands: the shared engine inline, the merged
    per-job counters when the work ran in worker processes."""
    _print_perf_stats(arguments, engine.stats if engine is not None else report.stats)


def _job_timeout(arguments: argparse.Namespace) -> Optional[float]:
    return getattr(arguments, "job_timeout", None)


def _batch_engine(
    arguments: argparse.Namespace, jobs: int
) -> Optional[MeasureEngine]:
    """The shared inline engine, or ``None`` when a supervised pool will run.

    A ``--job-timeout`` forces pool execution even for ``--jobs 1`` (an
    inline job cannot be interrupted), in which case the CLI must report the
    batch's *merged* counters rather than an engine that never ran anything.
    Non-default engine flags always run inline and need their engine.
    """
    if _nondefault_engine_flags(arguments):
        return _measure_engine(arguments)
    if jobs <= 1 and _job_timeout(arguments) is None:
        return _measure_engine(arguments)
    return None


def _retry_policy(arguments: argparse.Namespace) -> Optional[RetryPolicy]:
    """The retry policy the fault-tolerance flags select (None = defaults)."""
    return _config(arguments).retry_policy()


def _table1_distributed(
    arguments: argparse.Namespace, schedule: Tuple[int, ...]
) -> int:
    """Anytime Table 1 where the *frontier*, not the program list, is the
    unit of parallelism: one program at a time, each deepening sharded
    across ``--explore-jobs`` workers over the store-persisted frontier.
    Rows (and counters) are byte-identical to the single-process suite; a
    rerun replays finished depths from the store instead of re-exploring."""
    from repro.batch.distribute import run_distributed_schedule
    from repro.batch.jobs import decode_number
    from repro.batch.suites import schedule_suite

    config = _config(arguments)
    store = config.open_store()
    engine = _measure_engine(arguments)
    specs = schedule_suite(schedule, target_gap=arguments.target_gap)
    print(f"{'term':16s} {'LB':>14s} {'paths':>7s} {'depth':>6s} {'time':>9s}")
    failures = 0
    for spec in specs:
        try:
            report = run_distributed_schedule(
                spec.program,
                spec.resolve(),
                schedule,
                store=store,
                engine=engine,
                jobs=config.effective_explore_jobs(),
                max_paths=spec.canonical_params()["max_paths"],
                target_gap=arguments.target_gap,
                job_timeout=config.job_timeout,
                retry_policy=config.retry_policy(),
            )
        except Exception as error:
            print(f"{spec.program:16s} ERROR: {type(error).__name__}: {error}")
            failures += 1
            continue
        rows = report.rows
        for position, point in enumerate(rows):
            probability = float(decode_number(point["probability"]))
            elapsed = (
                f"{report.elapsed_seconds * 1000:8.0f}ms"
                if position == len(rows) - 1
                else f"{'':10s}"
            )
            print(
                f"{spec.program:16s} {probability:14.10f} "
                f"{point['path_count']:7d} {point['depth']:6d} "
                f"{elapsed}"
            )
    _print_perf_stats(arguments, engine.stats)
    return 0 if failures == 0 else 1


def _command_table1(arguments: argparse.Namespace) -> int:
    if _target_gap_without_schedule(arguments):
        return 2
    _warn_explore_jobs_unused(arguments)
    from repro.batch.jobs import decode_number
    from repro.batch.suites import schedule_suite, table1_suite

    schedule = getattr(arguments, "schedule", None)
    if schedule and _config(arguments).effective_explore_jobs() > 1:
        return _table1_distributed(arguments, schedule)
    jobs = _batch_jobs(arguments)
    engine = _batch_engine(arguments, jobs)
    if schedule:
        specs = schedule_suite(schedule, target_gap=arguments.target_gap)
    else:
        specs = table1_suite(depth=arguments.depth)
    report = run_batch(
        specs,
        jobs=jobs,
        cache=_batch_cache(arguments),
        engine=engine,
        job_timeout=_job_timeout(arguments),
        retry_policy=_retry_policy(arguments),
    )
    print(f"{'term':16s} {'LB':>14s} {'paths':>7s} {'depth':>6s} {'time':>9s}")
    for result in report.results:
        if not result.ok:
            print(f"{result.spec.program:16s} ERROR: {result.error}")
            continue
        payload = result.payload or {}
        if schedule:
            # One row per scheduled depth, from the job's anytime trajectory
            # (the whole column costs one incremental job per program).  The
            # job's elapsed time covers the whole schedule, so it is printed
            # once, on the deepest row.
            trajectory = payload.get("trajectory", [])
            for position, point in enumerate(trajectory):
                probability = float(decode_number(point["probability"]))
                elapsed = (
                    f"{result.elapsed_ms:8.0f}ms"
                    if position == len(trajectory) - 1
                    else f"{'':10s}"
                )
                print(
                    f"{result.spec.program:16s} {probability:14.10f} "
                    f"{point['path_count']:7d} {point['depth']:6d} "
                    f"{elapsed}"
                )
            continue
        probability = float(decode_number(payload["probability"]))
        print(
            f"{result.spec.program:16s} {probability:14.10f} "
            f"{payload['path_count']:7d} {arguments.depth:6d} "
            f"{result.elapsed_ms:8.0f}ms"
        )
    _print_batch_stats(arguments, report, engine)
    return 0 if report.error_count == 0 else 1


def _command_table2(arguments: argparse.Namespace) -> int:
    from repro.batch.suites import table2_suite

    jobs = _batch_jobs(arguments)
    engine = _batch_engine(arguments, jobs)
    report = run_batch(
        table2_suite(),
        jobs=jobs,
        cache=_batch_cache(arguments),
        engine=engine,
        job_timeout=_job_timeout(arguments),
        retry_policy=_retry_policy(arguments),
    )
    print(f"{'term':18s} {'verified':>9s}  Papprox")
    for result in report.results:
        if not result.ok:
            print(f"{result.spec.program:18s} ERROR: {result.error}")
            continue
        payload = result.payload or {}
        print(
            f"{result.spec.program:18s} "
            f"{'yes' if payload.get('verified') else 'no':>9s}  "
            f"{payload.get('papprox') or '-'}   ({result.elapsed_ms:.0f} ms)"
        )
    _print_batch_stats(arguments, report, engine)
    return 0 if report.error_count == 0 else 1


def _command_list_programs(arguments: argparse.Namespace) -> int:
    for name, program in sorted(_all_programs().items()):
        print(f"{name:18s} {program.description}")
    return 0


def _command_classify(arguments: argparse.Namespace) -> int:
    program = _resolve_program(arguments.program)
    telemetry.set_context(program=arguments.program)
    engine = _measure_engine(arguments)
    start = time.perf_counter()
    classification = classify_termination(program, engine=engine)
    elapsed = time.perf_counter() - start
    print(f"program      : {pretty(program.fix, unicode_symbols=False)}")
    print(f"verdict      : {classification.summary()}")
    if classification.past.papprox is not None:
        print(f"Papprox      : {classification.past.papprox}")
    if classification.past.expected_total_calls is not None:
        print(f"E[calls]     : {classification.past.expected_total_calls}")
    print(f"time         : {elapsed * 1000:.1f} ms")
    _print_stats(arguments, engine)
    return 0


def _command_report(arguments: argparse.Namespace) -> int:
    if _target_gap_without_schedule(arguments):
        return 2
    from repro.geometry.stats import PerfStats

    jobs = _batch_jobs(arguments)
    engine = _batch_engine(arguments, jobs)
    sink = PerfStats() if engine is None else None
    print(
        full_report(
            depth=arguments.depth,
            measure_engine=engine,
            jobs=jobs,
            cache=_batch_cache(arguments),
            stats_sink=sink,
            schedule=getattr(arguments, "schedule", None),
            target_gap=getattr(arguments, "target_gap", None),
        )
    )
    _print_perf_stats(arguments, engine.stats if engine is not None else sink)
    return 0


def _command_batch_prune(arguments: argparse.Namespace) -> int:
    """``python -m repro batch prune --cache-dir ... [--keep-runs N]``."""
    cache = _batch_cache(arguments)
    if cache is None:
        print("batch prune: --cache-dir is required", file=sys.stderr)
        return 2
    if arguments.keep_runs < 1:
        print("batch prune: --keep-runs must be at least 1", file=sys.stderr)
        return 2
    report = cache.prune(min_age_runs=arguments.keep_runs)
    print("pruned the persistent store:")
    for line in report.summary().splitlines():
        print(f"  {line}")
    return 0


def _command_store_migrate(arguments: argparse.Namespace) -> int:
    """``python -m repro store migrate --cache-dir DIR [--keep-json]``."""
    from repro.batch.store_sqlite import migrate_store

    if not arguments.cache_dir:
        print("store migrate: --cache-dir is required", file=sys.stderr)
        return 2
    if not os.path.isdir(arguments.cache_dir):
        print(
            f"store migrate: {arguments.cache_dir} is not a directory",
            file=sys.stderr,
        )
        return 2
    report = migrate_store(arguments.cache_dir, keep_json=arguments.keep_json)
    print("migrated the persistent store to SQLite:")
    for line in report.summary().splitlines():
        print(f"  {line}")
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    """``python -m repro serve --socket PATH``: run the analysis daemon."""
    import asyncio

    from repro.service.daemon import serve

    config = _config(arguments)
    print(f"serving on {arguments.socket}", file=sys.stderr)
    if config.cache_dir:
        print(f"store        : {config.cache_dir} ({config.store_backend})", file=sys.stderr)
    try:
        asyncio.run(serve(arguments.socket, config=config))
    except KeyboardInterrupt:
        pass
    return 0


def _command_call(arguments: argparse.Namespace) -> int:
    """``python -m repro call --socket PATH METHOD [--params JSON]``.

    ``--repeat N`` sends N copies of the request as one JSON-RPC batch --
    every copy is in flight before the first completes, so identical
    requests exercise the daemon's coalescing (the CI smoke job's probe).
    """
    from repro.service.client import ServiceClient, ServiceError

    try:
        params = json.loads(arguments.params) if arguments.params else {}
    except ValueError as error:
        print(f"call: --params is not valid JSON: {error}", file=sys.stderr)
        return 2
    if not isinstance(params, dict):
        print("call: --params must be a JSON object", file=sys.stderr)
        return 2
    if arguments.repeat < 1:
        print("call: --repeat must be at least 1", file=sys.stderr)
        return 2
    try:
        with ServiceClient(arguments.socket, timeout=arguments.timeout) as client:
            if arguments.repeat == 1:
                output = client.call(arguments.method, params)
            else:
                output = client.call_batch(
                    [
                        {"method": arguments.method, "params": params}
                        for _ in range(arguments.repeat)
                    ]
                )
    except ServiceError as error:
        print(f"call: {error}", file=sys.stderr)
        return 1
    except (OSError, ConnectionError) as error:
        print(f"call: cannot reach {arguments.socket}: {error}", file=sys.stderr)
        return 2
    print(json.dumps(output, indent=2, sort_keys=True))
    return 0


def _command_doctor(arguments: argparse.Namespace) -> int:
    """``python -m repro doctor``: store and/or trace health checks."""
    from repro.batch.doctor import DoctorReport, check_trace, diagnose, write_report_json

    if arguments.stale_runs < 1:
        print("doctor: --stale-runs must be at least 1", file=sys.stderr)
        return 2
    if not arguments.cache_dir and not arguments.trace:
        print("doctor: provide --cache-dir and/or --trace", file=sys.stderr)
        return 2
    if arguments.cache_dir:
        report = diagnose(arguments.cache_dir, stale_runs=arguments.stale_runs)
    else:
        report = DoctorReport(directory="(none)")
    if arguments.trace:
        check_trace(report, arguments.trace)
    print(report.summary())
    if arguments.json:
        write_report_json(report, arguments.json)
    return report.exit_code


def _command_trace_summarize(arguments: argparse.Namespace) -> int:
    """``python -m repro trace summarize PATH [--check-stats-json STATS]``."""
    from repro.telemetry.analyze import read_trace, render_summary

    try:
        accumulator = read_trace(arguments.trace_path)
    except OSError as error:
        print(
            f"trace summarize: cannot read {arguments.trace_path}: {error}",
            file=sys.stderr,
        )
        return 2
    stats_counters = None
    if arguments.check_stats_json:
        try:
            with open(arguments.check_stats_json) as stream:
                stats_counters = json.load(stream).get("counters", {})
        except (OSError, ValueError) as error:
            print(
                f"trace summarize: cannot read --check-stats-json "
                f"{arguments.check_stats_json}: {error}",
                file=sys.stderr,
            )
            return 2
    text, exit_code = render_summary(
        accumulator, arguments.trace_path, stats_counters
    )
    print(text)
    return exit_code


def _command_trace_watch(arguments: argparse.Namespace) -> int:
    """``python -m repro trace watch PATH``: follow a live trace."""
    from repro.telemetry.watch import watch

    if arguments.interval <= 0:
        print("trace watch: --interval must be positive", file=sys.stderr)
        return 2
    return watch(
        arguments.trace_path,
        interval=arguments.interval,
        once=arguments.once,
        max_idle=arguments.max_idle,
        bench=arguments.bench,
    )


def _command_batch(arguments: argparse.Namespace) -> int:
    if arguments.job_file == "prune":
        return _command_batch_prune(arguments)
    if _target_gap_without_schedule(arguments):
        return 2
    if arguments.job_file:
        specs = load_job_file(arguments.job_file)
    elif arguments.suite:
        try:
            specs = suite(
                arguments.suite,
                depth=arguments.depth,
                schedule=getattr(arguments, "schedule", None),
                target_gap=getattr(arguments, "target_gap", None),
            )
        except ValueError as error:  # e.g. --schedule on a suite without depths
            print(f"batch: {error}", file=sys.stderr)
            return 2
    else:
        print("batch: provide a job file or --suite", file=sys.stderr)
        return 2

    append = False
    if arguments.resume and not arguments.output:
        print("batch: --resume requires --output", file=sys.stderr)
        return 2
    # The existing output file is scanned whether or not this is a resume:
    # a torn results file should be loudly visible, not only when the
    # operator happens to pass --resume.
    scan = None
    if arguments.output and os.path.exists(arguments.output):
        scan = scan_results_jsonl(arguments.output)
        if scan.corrupt_lines:
            print(
                f"batch: found {scan.corrupt_lines} corrupt line(s) out of "
                f"{scan.total_lines} in {arguments.output}"
                + ("; their jobs will re-run" if arguments.resume else ""),
                file=sys.stderr,
            )
    if arguments.resume:
        done_keys = scan.ok_keys if scan is not None else set()
        if done_keys:
            append = True

            def not_done(spec) -> bool:
                try:
                    return spec.key() not in done_keys
                except Exception:
                    return True

            specs = [spec for spec in specs if not_done(spec)]

    jobs = _batch_jobs(arguments, default=os.cpu_count() or 1)
    engine = _batch_engine(arguments, jobs)
    emit_jsonl_to_stdout = arguments.output is None
    status_stream = sys.stderr if emit_jsonl_to_stdout else sys.stdout

    def progress(result: JobResult, done: int, total: int) -> None:
        if result.ok:
            outcome = "cached" if result.cached else f"{result.elapsed_ms:.0f} ms"
        else:
            outcome = f"ERROR ({result.error})"
        print(
            f"[{done}/{total}] {result.spec.analysis:12s} "
            f"{result.spec.program:18s} {outcome}",
            file=sys.stderr,
        )

    report = run_batch(
        specs,
        jobs=jobs,
        cache=_batch_cache(arguments),
        engine=engine,
        progress=progress,
        job_timeout=_job_timeout(arguments),
        retry_policy=_retry_policy(arguments),
    )
    if scan is not None:
        report.corrupt_result_lines = scan.corrupt_lines
    if arguments.output:
        write_results_jsonl(arguments.output, report.results, append=append)
        print(f"results          : {arguments.output}", file=status_stream)
    else:
        for result in report.results:
            print(result.to_json_line())
    print(report.summary(), file=status_stream)
    _print_batch_stats(arguments, report, engine)
    return 0 if report.error_count == 0 else 1


def _add_batch_flags(subparser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that delegates to the batch runner."""
    subparser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes to fan the analyses out over (default: 1)",
    )
    subparser.add_argument(
        "--cache-dir",
        default=None,
        help="persist job results and measure entries here, across runs",
    )
    _add_store_flag(subparser)


def _add_explore_flags(subparser: argparse.ArgumentParser) -> None:
    """``--explore-jobs``: distributed anytime deepening (lower-bound/table1)."""
    subparser.add_argument(
        "--explore-jobs",
        type=int,
        default=None,
        metavar="N",
        help="shard each --schedule deepening of the store-persisted "
        "exploration frontier across N supervised worker processes with "
        "work stealing (requires --cache-dir; per-depth bounds and "
        "counters stay byte-identical to a single-process run)",
    )


def _add_store_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--store",
        choices=("auto", "json", "sqlite"),
        default="auto",
        help="store backend for --cache-dir: 'auto' uses SQLite iff the "
        "directory already holds a store.sqlite3 (i.e. was migrated), "
        "'json' forces sharded JSON, 'sqlite' forces the database "
        "(default: auto)",
    )


def _add_fault_flags(subparser: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags of the supervised pool (batch/table1/table2)."""
    subparser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per job; an overdue job's worker is killed "
        "and the job retried (forces pool execution even with --jobs 1)",
    )
    subparser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="re-submissions per job after transient failures -- worker "
        "death, timeout, OS error (default: 2; deterministic job "
        "exceptions are never retried)",
    )
    subparser.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base of the exponential retry backoff (default: 0.05)",
    )


def _add_measure_flags(subparser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that measures constraint sets."""
    subparser.add_argument(
        "--no-measure-cache",
        action="store_true",
        help="disable the shared memoizing measure engine (bit-identical, slower)",
    )
    subparser.add_argument(
        "--no-block-memo",
        action="store_true",
        help="memoize whole constraint sets only, without the block "
        "decomposition (bit-identical on the rational backend, slower)",
    )
    subparser.add_argument(
        "--no-block-sweep",
        action="store_true",
        help="sweep non-affine constraint sets jointly instead of block by "
        "block (restores the pre-block-sweep bounds: sound but looser)",
    )
    subparser.add_argument(
        "--sweep-depth",
        type=int,
        default=None,
        help="bisection depth budget of the certified subdivision sweep "
        "(default: 14)",
    )
    subparser.add_argument(
        "--sweep-gap",
        type=Fraction,
        default=None,
        metavar="FRACTION",
        help="stop refining a sweep once its undecided volume is at most "
        "this (e.g. 1/1024; default: refine to the full depth budget)",
    )
    subparser.add_argument(
        "--sweep-max-boxes",
        type=int,
        default=None,
        help="cap on boxes examined per sweep (default: unlimited)",
    )
    subparser.add_argument(
        "--no-sweep-kernel",
        action="store_true",
        help="classify sweep boxes one at a time through the scalar loop "
        "instead of the vectorized chunk kernel (bit-identical, slower)",
    )
    subparser.add_argument(
        "--contract",
        action="store_true",
        help="run the interval-Newton / monotonicity contractor on boxes "
        "the sweep classifier leaves undecided (certifiably tighter "
        "bounds at equal budget; changes emitted inexact bounds, so "
        "results persist under distinct store keys)",
    )
    subparser.add_argument(
        "--stats",
        action="store_true",
        help="print the measure engine's performance counters after the run",
    )
    subparser.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write the measure engine's performance counters to PATH as "
        "JSON (machine-readable companion of --stats)",
    )
    subparser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream a structured telemetry trace (JSONL events: spans, "
        "anytime bounds, job lifecycle, recovery) to PATH; results are "
        "byte-identical with or without it -- see 'repro trace'",
    )
    # Only measuring commands *write* a trace; doctor's --trace reads one.
    subparser.set_defaults(_trace_arms_telemetry=True)


def _add_schedule_flags(subparser: argparse.ArgumentParser) -> None:
    """Flags shared by the commands with an anytime (depth-schedule) mode."""
    subparser.add_argument(
        "--schedule",
        type=_schedule_argument,
        default=None,
        metavar="D1,D2,...",
        help="anytime mode: run one incremental computation over this "
        "non-decreasing depth schedule, streaming a bound per depth "
        "(bit-identical to from-scratch runs at the same depths)",
    )
    subparser.add_argument(
        "--target-gap",
        type=Fraction,
        default=None,
        metavar="FRACTION",
        help="stop a --schedule early once the certified anytime gap "
        "(unexplored mass, or the sweep bracket once exhaustive) drops "
        "to this (e.g. 1/1000)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic termination analyses for SPCF programs "
        "(Beutner & Ong, PLDI 2021 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lower = subparsers.add_parser(
        "lower-bound", help="certified lower bound on the probability of termination"
    )
    lower.add_argument("program", help="surface-syntax program or library program name")
    lower.add_argument("--depth", type=int, default=80, help="per-path step budget")
    lower.add_argument("--cbv", action="store_true", help="use call-by-value evaluation")
    lower.add_argument(
        "--cache-dir",
        default=None,
        help="persist the exploration frontier (and its anytime trajectory) "
        "here: a rerun with --schedule resumes the suspended frontier "
        "instead of re-exploring, surviving crashes and process "
        "boundaries",
    )
    _add_store_flag(lower)
    _add_fault_flags(lower)
    _add_explore_flags(lower)
    _add_measure_flags(lower)
    _add_schedule_flags(lower)
    lower.set_defaults(handler=_command_lower_bound)

    verify = subparsers.add_parser("verify", help="automatic AST verification")
    verify.add_argument("program", help="a recursive function (mu-term) or library name")
    verify.add_argument("--tree", action="store_true", help="print the execution tree")
    _add_measure_flags(verify)
    verify.set_defaults(handler=_command_verify)

    estimate = subparsers.add_parser("estimate", help="Monte-Carlo estimate of Pterm")
    estimate.add_argument("--program", required=True)
    estimate.add_argument("--runs", type=int, default=2000)
    estimate.add_argument("--max-steps", type=int, default=20_000)
    estimate.add_argument(
        "--seed",
        type=int,
        default=0,
        help="PRNG seed for the sampler (estimates are reproducible per seed)",
    )
    estimate.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write the sampler statistics to PATH as JSON",
    )
    estimate.set_defaults(handler=_command_estimate)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1 (lower bounds)")
    table1.add_argument("--depth", type=int, default=50)
    _add_measure_flags(table1)
    _add_batch_flags(table1)
    _add_fault_flags(table1)
    _add_schedule_flags(table1)
    _add_explore_flags(table1)
    table1.set_defaults(handler=_command_table1)

    table2 = subparsers.add_parser("table2", help="regenerate Table 2 (AST verification)")
    _add_measure_flags(table2)
    _add_batch_flags(table2)
    _add_fault_flags(table2)
    table2.set_defaults(handler=_command_table2)

    batch = subparsers.add_parser(
        "batch",
        help="run a batch of analysis jobs in parallel with a persistent cache",
    )
    batch.add_argument(
        "job_file",
        nargs="?",
        default=None,
        help="JSON job file (a list of {program, analysis, params} objects); "
        "omit to use --suite, or pass the literal word 'prune' to garbage-"
        "collect stale measure/sweep entries from --cache-dir",
    )
    batch.add_argument(
        "--suite",
        choices=SUITE_NAMES,
        default=None,
        help="run a named evaluation suite instead of a job file",
    )
    batch.add_argument(
        "--depth", type=int, default=50, help="depth for the suite's lower-bound jobs"
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: one per CPU core)",
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        help="persist job results and measure entries here, across runs",
    )
    _add_store_flag(batch)
    batch.add_argument(
        "--output",
        default=None,
        help="write deterministic results JSONL here (default: stdout)",
    )
    batch.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs recorded as successful in --output; failed and "
        "missing jobs are (re)run and their results appended",
    )
    batch.add_argument(
        "--keep-runs",
        type=int,
        default=20,
        help="for 'batch prune': drop measure/sweep entries untouched for "
        "this many runs (default: 20)",
    )
    _add_measure_flags(batch)
    _add_fault_flags(batch)
    _add_schedule_flags(batch)
    batch.set_defaults(handler=_command_batch)

    serve = subparsers.add_parser(
        "serve",
        help="run the analysis daemon: one hot engine, many clients, "
        "coalesced requests over a Unix socket",
    )
    serve.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="Unix socket path to listen on (a stale file is replaced; "
        "removed on orderly exit)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="persist job results and measure entries here (hydrates the "
        "hot engine at startup)",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict named analysis sessions idle longer than this "
        "(default: keep sessions until shutdown)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        metavar="N",
        help="cap on live named sessions; creating one past the cap "
        "evicts the least recently used (default: unbounded)",
    )
    _add_store_flag(serve)
    _add_measure_flags(serve)
    serve.set_defaults(handler=_command_serve)

    call = subparsers.add_parser(
        "call",
        help="send one JSON-RPC request to a running analysis daemon",
    )
    call.add_argument(
        "--socket", required=True, metavar="PATH", help="the daemon's Unix socket"
    )
    call.add_argument(
        "method",
        help="the request method: ping, stats, shutdown, measure, "
        "lower-bound, lower-bound-schedule, verify, classify, estimate, "
        "papprox, table1",
    )
    call.add_argument(
        "--params",
        default=None,
        metavar="JSON",
        help="request parameters as a JSON object, e.g. "
        "'{\"program\": \"geo(1/2)\", \"depth\": 60}'",
    )
    call.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="send N copies as one JSON-RPC batch (identical copies "
        "coalesce into a single computation on the daemon)",
    )
    call.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="socket timeout for the response (default: 300)",
    )
    call.set_defaults(handler=_command_call)

    store = subparsers.add_parser(
        "store",
        help="persistent-store administration (see also 'batch prune' and 'doctor')",
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    migrate = store_commands.add_parser(
        "migrate",
        help="convert a sharded-JSON cache directory to the SQLite backend "
        "(checksummed envelopes and GC stamps preserved; idempotent)",
    )
    migrate.add_argument(
        "--cache-dir", required=True, help="the cache directory to migrate"
    )
    migrate.add_argument(
        "--keep-json",
        action="store_true",
        help="leave the JSON shards in place next to the database "
        "(default: remove them after a successful import)",
    )
    migrate.set_defaults(handler=_command_store_migrate)

    doctor = subparsers.add_parser(
        "doctor",
        help="read-only health checks over a batch cache directory "
        "(exit 1 on damage or a non-empty quarantine)",
    )
    doctor.add_argument(
        "--cache-dir",
        default=None,
        help="the batch cache directory to diagnose",
    )
    doctor.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="additionally validate a telemetry trace file: schema version, "
        "corrupt lines, span balance (a torn final line is reported, "
        "not failed)",
    )
    doctor.add_argument(
        "--stale-runs",
        type=int,
        default=20,
        help="report entries untouched for this many runs as stale "
        "(default: 20, matching 'batch prune')",
    )
    doctor.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="additionally write the machine-readable report to PATH",
    )
    doctor.set_defaults(handler=_command_doctor)

    trace = subparsers.add_parser(
        "trace",
        help="inspect or follow a telemetry trace written by --trace",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_commands.add_parser(
        "summarize",
        help="render a finished trace: per-phase wall time, hit rates, "
        "hottest programs, anytime bounds, recovery-event totals "
        "(exit 1 on schema damage or a --check-stats-json mismatch)",
    )
    summarize.add_argument("trace_path", help="the trace JSONL file to read")
    summarize.add_argument(
        "--check-stats-json",
        default=None,
        metavar="PATH",
        help="cross-check the trace's recovery events (retries, timeouts, "
        "worker restarts, quarantines) against this --stats-json dump; "
        "any mismatch fails the summary",
    )
    summarize.set_defaults(handler=_command_trace_summarize)
    watch = trace_commands.add_parser(
        "watch",
        help="tail a live trace: anytime bounds converging per program, "
        "job progress, recovery events",
    )
    watch.add_argument("trace_path", help="the trace JSONL file to follow")
    watch.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between refreshes (default: 1.0)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot of the current trace state and exit",
    )
    watch.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up after this many seconds without new events "
        "(default: follow until the trace ends)",
    )
    watch.add_argument(
        "--bench",
        nargs="?",
        const="benchmarks/baselines",
        default=None,
        metavar="DIR",
        help="render the committed benchmark baseline history from DIR "
        "(BENCH_*.json files) alongside the live dashboard "
        "(default DIR when the flag is bare: benchmarks/baselines)",
    )
    watch.set_defaults(handler=_command_trace_watch)

    list_programs = subparsers.add_parser("list-programs", help="list the built-in programs")
    list_programs.set_defaults(handler=_command_list_programs)

    classify = subparsers.add_parser(
        "classify", help="combined AST / PAST classification of a recursive program"
    )
    classify.add_argument("program", help="a recursive function (mu-term) or library name")
    _add_measure_flags(classify)
    classify.set_defaults(handler=_command_classify)

    report = subparsers.add_parser(
        "report", help="regenerate all evaluation tables as markdown"
    )
    report.add_argument("--depth", type=int, default=50)
    _add_measure_flags(report)
    _add_batch_flags(report)
    _add_schedule_flags(report)
    report.set_defaults(handler=_command_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    trace_path = (
        getattr(arguments, "trace", None)
        if getattr(arguments, "_trace_arms_telemetry", False)
        else None
    )
    if trace_path:
        command = " ".join(sys.argv[1:] if argv is None else list(argv))
        telemetry.start(trace_path, command=command)
    try:
        return arguments.handler(arguments)
    finally:
        if trace_path:
            telemetry.stop()


if __name__ == "__main__":
    sys.exit(main())
