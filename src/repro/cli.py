"""Command-line interface for the reproduction.

The CLI exposes the two analyses the paper ships as prototypes, plus the
Monte-Carlo estimator, over programs written in the surface syntax of
:mod:`repro.spcf.parser` or taken from the built-in benchmark library::

    python -m repro lower-bound "(mu phi x. if sample - 1/2 then x else phi (x+1)) 1" --depth 80
    python -m repro verify "mu phi x. if sample - 1/2 then x else phi (phi (x+1))"
    python -m repro estimate --program "ex1.1(1/4)" --runs 5000
    python -m repro table1 --depth 50
    python -m repro table2
    python -m repro list-programs

Program arguments may be either a source string or the name of a benchmark
program (as listed by ``list-programs``).

The measuring commands build one shared
:class:`~repro.geometry.engine.MeasureEngine` per invocation, so every
analysis a command runs draws from a single memoized measure cache; pass
``--no-measure-cache`` to disable memoization (results are bit-identical,
only slower) and ``--stats`` to print the engine's
:class:`~repro.geometry.stats.PerfStats` counters after the run.
"""

from __future__ import annotations

import argparse
import sys
import time
from fractions import Fraction
from typing import Optional, Sequence

from repro.astcheck import verify_ast
from repro.astcheck.exectree import build_execution_tree, render_tree
from repro.geometry.engine import MeasureEngine
from repro.lowerbound import LowerBoundEngine
from repro.pastcheck import classify_termination
from repro.programs import extra_programs, table1_programs, table2_programs
from repro.programs.library import Program
from repro.report import full_report
from repro.semantics import estimate_termination
from repro.spcf import parse, pretty, typecheck
from repro.spcf.syntax import Fix, Term
from repro.symbolic.execute import Strategy


def _all_programs():
    programs = {}
    programs.update(table1_programs())
    for name, program in table2_programs().items():
        programs.setdefault(name, program)
    for name, program in extra_programs().items():
        programs.setdefault(name, program)
    return programs


def _resolve_program(source: str) -> Program:
    """Resolve a CLI program argument: a library name or surface syntax."""
    programs = _all_programs()
    if source in programs:
        return programs[source]
    term = parse(source)
    fix = term if isinstance(term, Fix) else _find_fix(term)
    return Program(
        name="<command line>",
        fix=fix if isinstance(fix, Fix) else Fix("phi", "x", term),
        applied=term,
        description="program supplied on the command line",
    )


def _find_fix(term: Term) -> Optional[Fix]:
    from repro.spcf.syntax import subterms

    for sub in subterms(term):
        if isinstance(sub, Fix):
            return sub
    return None


def _measure_engine(arguments: argparse.Namespace) -> MeasureEngine:
    """The per-command shared measure engine, honouring ``--no-measure-cache``."""
    return MeasureEngine(cache_enabled=not getattr(arguments, "no_measure_cache", False))


def _print_stats(arguments: argparse.Namespace, engine: MeasureEngine) -> None:
    if getattr(arguments, "stats", False):
        print("measure engine statistics:")
        for line in engine.stats.summary().splitlines():
            print(f"  {line}")


def _command_lower_bound(arguments: argparse.Namespace) -> int:
    program = _resolve_program(arguments.program)
    strategy = Strategy.CBV if arguments.cbv else program.strategy
    measure_engine = _measure_engine(arguments)
    engine = LowerBoundEngine(strategy=strategy, measure_engine=measure_engine)
    start = time.perf_counter()
    result = engine.lower_bound(program.applied, max_steps=arguments.depth)
    elapsed = time.perf_counter() - start
    print(f"program      : {pretty(program.applied, unicode_symbols=False)}")
    print(f"type         : {typecheck(program.applied)!r}")
    print(f"lower bound  : {float(result.probability):.10f}")
    if result.exact_measures:
        print(f"  exactly    : {result.probability}")
    print(f"E[steps] >=  : {float(result.expected_steps):.4f}")
    print(f"paths        : {result.path_count} (exhaustive: {result.exhaustive})")
    print(f"depth        : {arguments.depth}")
    print(f"time         : {elapsed * 1000:.1f} ms")
    _print_stats(arguments, measure_engine)
    return 0


def _command_verify(arguments: argparse.Namespace) -> int:
    program = _resolve_program(arguments.program)
    engine = _measure_engine(arguments)
    start = time.perf_counter()
    result = verify_ast(program, engine=engine)
    elapsed = time.perf_counter() - start
    print(f"program      : {pretty(program.fix, unicode_symbols=False)}")
    print(f"verdict      : {'AST verified' if result.verified else 'not verified'}")
    print(f"Papprox      : {result.papprox}")
    print(f"rank         : {result.rank}")
    print(f"time         : {elapsed * 1000:.1f} ms")
    if result.reasons:
        for reason in result.reasons:
            print(f"  note       : {reason}")
    if arguments.tree and result.tree is not None:
        print("execution tree:")
        print(render_tree(result.tree))
    _print_stats(arguments, engine)
    return 0 if result.verified else 1


def _command_estimate(arguments: argparse.Namespace) -> int:
    program = _resolve_program(arguments.program)
    estimate = estimate_termination(
        program.applied, runs=arguments.runs, max_steps=arguments.max_steps
    )
    low, high = estimate.confidence_interval()
    print(f"program      : {pretty(program.applied, unicode_symbols=False)}")
    print(f"Pterm (MC)   : {estimate.probability:.4f}  (99% CI [{low:.4f}, {high:.4f}])")
    if estimate.mean_steps is not None:
        print(f"mean steps   : {estimate.mean_steps:.1f}")
        print(f"mean samples : {estimate.mean_samples:.1f}")
    return 0


def _command_table1(arguments: argparse.Namespace) -> int:
    measure_engine = _measure_engine(arguments)
    print(f"{'term':16s} {'LB':>14s} {'paths':>7s} {'depth':>6s} {'time':>9s}")
    for name, program in table1_programs().items():
        engine = LowerBoundEngine(strategy=program.strategy, measure_engine=measure_engine)
        start = time.perf_counter()
        result = engine.lower_bound(program.applied, max_steps=arguments.depth)
        elapsed = time.perf_counter() - start
        print(
            f"{name:16s} {float(result.probability):14.10f} {result.path_count:7d} "
            f"{arguments.depth:6d} {elapsed * 1000:8.0f}ms"
        )
    _print_stats(arguments, measure_engine)
    return 0


def _command_table2(arguments: argparse.Namespace) -> int:
    engine = _measure_engine(arguments)
    print(f"{'term':18s} {'verified':>9s}  Papprox")
    for name, program in table2_programs().items():
        start = time.perf_counter()
        result = verify_ast(program, engine=engine)
        elapsed = time.perf_counter() - start
        print(
            f"{name:18s} {'yes' if result.verified else 'no':>9s}  {result.papprox}"
            f"   ({elapsed * 1000:.0f} ms)"
        )
    _print_stats(arguments, engine)
    return 0


def _command_list_programs(arguments: argparse.Namespace) -> int:
    for name, program in sorted(_all_programs().items()):
        print(f"{name:18s} {program.description}")
    return 0


def _command_classify(arguments: argparse.Namespace) -> int:
    program = _resolve_program(arguments.program)
    engine = _measure_engine(arguments)
    start = time.perf_counter()
    classification = classify_termination(program, engine=engine)
    elapsed = time.perf_counter() - start
    print(f"program      : {pretty(program.fix, unicode_symbols=False)}")
    print(f"verdict      : {classification.summary()}")
    if classification.past.papprox is not None:
        print(f"Papprox      : {classification.past.papprox}")
    if classification.past.expected_total_calls is not None:
        print(f"E[calls]     : {classification.past.expected_total_calls}")
    print(f"time         : {elapsed * 1000:.1f} ms")
    _print_stats(arguments, engine)
    return 0


def _command_report(arguments: argparse.Namespace) -> int:
    engine = _measure_engine(arguments)
    print(full_report(depth=arguments.depth, measure_engine=engine))
    _print_stats(arguments, engine)
    return 0


def _add_measure_flags(subparser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that measures constraint sets."""
    subparser.add_argument(
        "--no-measure-cache",
        action="store_true",
        help="disable the shared memoizing measure engine (bit-identical, slower)",
    )
    subparser.add_argument(
        "--stats",
        action="store_true",
        help="print the measure engine's performance counters after the run",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic termination analyses for SPCF programs "
        "(Beutner & Ong, PLDI 2021 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lower = subparsers.add_parser(
        "lower-bound", help="certified lower bound on the probability of termination"
    )
    lower.add_argument("program", help="surface-syntax program or library program name")
    lower.add_argument("--depth", type=int, default=80, help="per-path step budget")
    lower.add_argument("--cbv", action="store_true", help="use call-by-value evaluation")
    _add_measure_flags(lower)
    lower.set_defaults(handler=_command_lower_bound)

    verify = subparsers.add_parser("verify", help="automatic AST verification")
    verify.add_argument("program", help="a recursive function (mu-term) or library name")
    verify.add_argument("--tree", action="store_true", help="print the execution tree")
    _add_measure_flags(verify)
    verify.set_defaults(handler=_command_verify)

    estimate = subparsers.add_parser("estimate", help="Monte-Carlo estimate of Pterm")
    estimate.add_argument("--program", required=True)
    estimate.add_argument("--runs", type=int, default=2000)
    estimate.add_argument("--max-steps", type=int, default=20_000)
    estimate.set_defaults(handler=_command_estimate)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1 (lower bounds)")
    table1.add_argument("--depth", type=int, default=50)
    _add_measure_flags(table1)
    table1.set_defaults(handler=_command_table1)

    table2 = subparsers.add_parser("table2", help="regenerate Table 2 (AST verification)")
    _add_measure_flags(table2)
    table2.set_defaults(handler=_command_table2)

    list_programs = subparsers.add_parser("list-programs", help="list the built-in programs")
    list_programs.set_defaults(handler=_command_list_programs)

    classify = subparsers.add_parser(
        "classify", help="combined AST / PAST classification of a recursive program"
    )
    classify.add_argument("program", help="a recursive function (mu-term) or library name")
    _add_measure_flags(classify)
    classify.set_defaults(handler=_command_classify)

    report = subparsers.add_parser(
        "report", help="regenerate all evaluation tables as markdown"
    )
    report.add_argument("--depth", type=int, default=50)
    _add_measure_flags(report)
    report.set_defaults(handler=_command_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":
    sys.exit(main())
