"""Distribution transforms: continuous distributions as SPCF terms.

Every builder returns a *closed SPCF term of type R* that, evaluated under
the sampling semantics, is distributed according to the named distribution.
All of them follow footnote 5 of the paper: draw ``u ~ U[0, 1]`` with
``sample`` and push it through the inverse CDF, expressed with the primitives
of :mod:`repro.distributions.registry`.

Each transform uses its ``sample`` draw exactly once, so the terms denote the
same distribution under call-by-name and call-by-value evaluation and can be
substituted freely into larger programs (e.g. as the step length of a random
walk or the guard of a probabilistic branch).

``sample_values`` runs any such term repeatedly under the sampling semantics
and returns the observed values; the tests use it to cross-check the
transforms against closed-form moments and CDFs.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Union

from repro.distributions.registry import extended_registry
from repro.semantics.cbv import CbVMachine
from repro.semantics.machine import RunStatus
from repro.semantics.sampler import run_lazily
from repro.spcf.primitives import PrimitiveRegistry
from repro.spcf.sugar import add, mul, prim, sub
from repro.spcf.syntax import If, Numeral, Sample, Term

Number = Union[Fraction, float, int]

__all__ = [
    "bernoulli",
    "cauchy",
    "exponential",
    "logistic",
    "normal",
    "pareto",
    "sample_values",
    "uniform",
]


def uniform(low: Number = 0, high: Number = 1) -> Term:
    """``U[low, high]``: ``low + (high - low) * sample``."""
    if high < low:
        raise ValueError("uniform requires low <= high")
    return add(Numeral(low), mul(sub(Numeral(high), Numeral(low)), Sample()))


def bernoulli(p: Number) -> Term:
    """``Bernoulli(p)``: 1 with probability ``p``, else 0.

    Encoded as ``if(sample - p, 1, 0)``: the left branch (guard ``<= 0``) is
    taken exactly when the draw is at most ``p``.
    """
    if not 0 <= p <= 1:
        raise ValueError("a Bernoulli parameter must lie in [0, 1]")
    return If(sub(Sample(), Numeral(p)), Numeral(1), Numeral(0))


def exponential(rate: Number = 1) -> Term:
    """``Exp(rate)``: ``-log(sample) / rate`` (inverse-CDF transform)."""
    if rate <= 0:
        raise ValueError("an exponential rate must be positive")
    scale = Fraction(1, 1) / Fraction(rate) if isinstance(rate, (int, Fraction)) else 1.0 / rate
    return mul(Numeral(scale), prim("neg", prim("log", Sample())))


def logistic(location: Number = 0, scale: Number = 1) -> Term:
    """``Logistic(location, scale)``: ``location + scale * logit(sample)``."""
    if scale <= 0:
        raise ValueError("a logistic scale must be positive")
    return add(Numeral(location), mul(Numeral(scale), prim("logit", Sample())))


def normal(mean: Number = 0, stddev: Number = 1) -> Term:
    """``N(mean, stddev^2)``: ``mean + stddev * probit(sample)``."""
    if stddev <= 0:
        raise ValueError("a normal standard deviation must be positive")
    return add(Numeral(mean), mul(Numeral(stddev), prim("probit", Sample())))


def cauchy(location: Number = 0, scale: Number = 1) -> Term:
    """``Cauchy(location, scale)``: ``location + scale * tan(pi (sample - 1/2))``."""
    if scale <= 0:
        raise ValueError("a Cauchy scale must be positive")
    return add(Numeral(location), mul(Numeral(scale), prim("cauchy_icdf", Sample())))


def pareto(shape: Number, minimum: Number = 1) -> Term:
    """``Pareto(shape, minimum)``: ``minimum * exp(-log(1 - sample) / shape)``."""
    if shape <= 0 or minimum <= 0:
        raise ValueError("Pareto shape and minimum must be positive")
    exponent = (
        Fraction(-1, 1) / Fraction(shape)
        if isinstance(shape, (int, Fraction))
        else -1.0 / shape
    )
    inner = prim("log", sub(Numeral(1), Sample()))
    return mul(Numeral(minimum), prim("exp", mul(Numeral(exponent), inner)))


def sample_values(
    term: Term,
    runs: int = 1_000,
    seed: Optional[int] = 0,
    max_steps: int = 10_000,
    registry: Optional[PrimitiveRegistry] = None,
) -> List[float]:
    """Evaluate ``term`` repeatedly under the sampling semantics.

    Returns the values of the terminating runs as floats; non-terminating or
    stuck runs (e.g. the measure-zero event ``sample = 0`` for a transform
    using ``log``) are skipped.
    """
    machine = CbVMachine(registry or extended_registry())
    rng = random.Random(seed)
    values: List[float] = []
    for _ in range(runs):
        result = run_lazily(machine, term, rng=rng, max_steps=max_steps)
        if result.status is not RunStatus.TERMINATED or result.value is None:
            continue
        if isinstance(result.value, Numeral):
            values.append(float(result.value.value))
    return values
