"""Continuous distributions as SPCF terms, and interval-separability analysis.

Footnote 5 of the paper notes that "sampling from other real-valued
distributions can be obtained from ``sample`` by applying the inverse of the
distribution's cumulative distribution function".  :mod:`repro.distributions`
makes that remark concrete:

* :mod:`repro.distributions.registry` extends the default primitive registry
  with the inverse-CDF primitives (``probit``, ``logit``, ``cauchy_icdf``,
  ``sqrt``, ``floor``) together with sound interval extensions,
* :mod:`repro.distributions.transforms` builds SPCF terms that sample from
  the uniform, Bernoulli, exponential, logistic, normal, Cauchy and Pareto
  distributions (plus empirical cross-check helpers),
* :mod:`repro.distributions.separability` provides numeric checkers for the
  interval-preservation and interval-separability hypotheses of Lem. 3.2 /
  Lem. 3.7, the Smith-Volterra-Cantor construction of Ex. 3.9 and the
  incompleteness gap it induces in the interval-based semantics.
"""

from repro.distributions.registry import extended_registry
from repro.distributions.transforms import (
    bernoulli,
    cauchy,
    exponential,
    logistic,
    normal,
    pareto,
    sample_values,
    uniform,
)
from repro.distributions.separability import (
    FatCantorSet,
    IntervalPreservationReport,
    SeparabilityReport,
    check_interval_preserving,
    check_interval_separable,
    fat_cantor_primitive,
    fat_cantor_set,
    incompleteness_example,
)

__all__ = [
    "FatCantorSet",
    "IntervalPreservationReport",
    "SeparabilityReport",
    "bernoulli",
    "cauchy",
    "check_interval_preserving",
    "check_interval_separable",
    "exponential",
    "extended_registry",
    "fat_cantor_primitive",
    "fat_cantor_set",
    "incompleteness_example",
    "logistic",
    "normal",
    "pareto",
    "sample_values",
    "uniform",
]
