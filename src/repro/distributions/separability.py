"""Executable views of interval preservation and interval separability (Sec. 3).

The soundness and completeness of the interval-based semantics rest on two
hypotheses about the primitive functions:

* *interval preservation* (Def. 3.1): the image of every box is an interval --
  guaranteed for continuous functions (Lem. 3.2);
* *interval separability* (Def. 3.6): the preimage of every interval is, up to
  a null set, a countable union of boxes -- guaranteed for continuous
  functions with null level sets (Lem. 3.7).

Neither hypothesis is decidable for black-box primitives, but both can be
probed numerically; :func:`check_interval_preserving` and
:func:`check_interval_separable` implement the probes the test-suite uses to
sanity-check every registered primitive.

The module also constructs the paper's counterexample (Ex. 3.9): a
Smith-Volterra-Cantor ("fat Cantor") set ``C`` of positive measure, the
distance function ``d_C`` (continuous, hence interval preserving, but *not*
interval separable because its zero set is fat and nowhere dense), and the
program ``if d_C(sample) then 0 else 1`` on which the interval semantics is
incomplete: the certified lower bound can never exceed ``1 - lambda(C)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

from repro.lowerbound.engine import LowerBoundEngine
from repro.distributions.registry import extended_registry
from repro.geometry.measure import MeasureOptions
from repro.spcf.primitives import Primitive, default_registry
from repro.spcf.syntax import If, Numeral, Prim, Sample, Term
from repro.symbolic.execute import Strategy

Number = Union[Fraction, float]

__all__ = [
    "FatCantorSet",
    "IncompletenessReport",
    "IntervalPreservationReport",
    "SeparabilityReport",
    "check_interval_preserving",
    "check_interval_separable",
    "fat_cantor_primitive",
    "fat_cantor_set",
    "incompleteness_example",
]


# ---------------------------------------------------------------------------
# Numeric probe of interval preservation (Def. 3.1 / Lem. 3.2).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntervalPreservationReport:
    """Outcome of the numeric interval-preservation probe."""

    primitive: str
    box: Tuple[Tuple[float, float], ...]
    image_low: float
    image_high: float
    largest_relative_gap: float
    looks_interval_preserving: bool


def check_interval_preserving(
    primitive: Primitive,
    box: Optional[Sequence[Tuple[float, float]]] = None,
    samples: int = 4_000,
    gap_threshold: float = 0.05,
    seed: int = 0,
) -> IntervalPreservationReport:
    """Probe whether the image of ``box`` under ``primitive`` is an interval.

    The probe samples the box densely, sorts the image values and reports the
    largest gap between consecutive values relative to the image's range.  A
    continuous function has (by Lem. 3.2) no gap in the limit; ``floor`` shows
    up with a large relative gap.
    """
    rng = random.Random(seed)
    bounds = tuple(box) if box is not None else ((0.05, 0.95),) * primitive.arity
    if len(bounds) != primitive.arity:
        raise ValueError("the probe box must have one interval per argument")
    images: List[float] = []
    for _ in range(samples):
        point = [rng.uniform(lo, hi) for lo, hi in bounds]
        try:
            images.append(float(primitive(*point)))
        except (ValueError, ZeroDivisionError, OverflowError):
            continue
    if len(images) < 2:
        raise ValueError("the probe produced fewer than two image values")
    images.sort()
    low, high = images[0], images[-1]
    span = high - low
    if span == 0:
        return IntervalPreservationReport(
            primitive.name, bounds, low, high, 0.0, True
        )
    largest_gap = max(b - a for a, b in zip(images, images[1:]))
    relative = largest_gap / span
    return IntervalPreservationReport(
        primitive=primitive.name,
        box=bounds,
        image_low=low,
        image_high=high,
        largest_relative_gap=relative,
        looks_interval_preserving=relative < gap_threshold,
    )


# ---------------------------------------------------------------------------
# Numeric probe of interval separability (Def. 3.6 / Lem. 3.7).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeparabilityReport:
    """Outcome of the numeric interval-separability probe."""

    primitive: str
    target: Tuple[float, float]
    depth: int
    inside_measure: float
    boundary_measure: float
    consistent_with_separability: bool


def check_interval_separable(
    primitive: Primitive,
    target: Tuple[Number, Number],
    box: Optional[Sequence[Tuple[float, float]]] = None,
    depth: int = 8,
    boundary_threshold: float = 0.1,
) -> SeparabilityReport:
    """Probe interval separability of ``primitive`` for one target interval.

    The domain box is subdivided into ``2^depth`` cells per dimension; each
    cell is classified with the interval extension as certainly inside the
    preimage of ``target``, certainly outside, or on the boundary.  Interval
    separability (plus continuity) means the boundary cells' total measure
    vanishes as ``depth`` grows; a fat level set keeps it bounded away from 0.
    """
    bounds = tuple(box) if box is not None else ((0.0, 1.0),) * primitive.arity
    if len(bounds) != primitive.arity:
        raise ValueError("the probe box must have one interval per argument")
    if primitive.arity > 2:
        raise ValueError("the separability probe supports arity 1 and 2 only")
    cells = 2**depth
    lo_target, hi_target = float(target[0]), float(target[1])
    inside = 0.0
    boundary = 0.0
    total = 0.0
    axes: List[List[Tuple[float, float]]] = []
    for lo, hi in bounds:
        width = (hi - lo) / cells
        axes.append([(lo + i * width, lo + (i + 1) * width) for i in range(cells)])
    if primitive.arity == 1:
        cell_boxes = [(segment,) for segment in axes[0]]
    else:
        cell_boxes = [(first, second) for first in axes[0] for second in axes[1]]
    for cell in cell_boxes:
        volume = 1.0
        for lo, hi in cell:
            volume *= hi - lo
        total += volume
        try:
            image_lo, image_hi = primitive.on_box(*cell)
        except (ValueError, ZeroDivisionError, OverflowError):
            boundary += volume
            continue
        image_lo, image_hi = float(image_lo), float(image_hi)
        if image_lo >= lo_target and image_hi <= hi_target:
            inside += volume
        elif image_hi < lo_target or image_lo > hi_target:
            continue
        else:
            boundary += volume
    return SeparabilityReport(
        primitive=primitive.name,
        target=(lo_target, hi_target),
        depth=depth,
        inside_measure=inside / total if total else 0.0,
        boundary_measure=boundary / total if total else 0.0,
        consistent_with_separability=(boundary / total if total else 0.0)
        < boundary_threshold,
    )


# ---------------------------------------------------------------------------
# The Smith-Volterra-Cantor set and the distance function of Ex. 3.9.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FatCantorSet:
    """The Smith-Volterra-Cantor set on ``[0, 1]``.

    At level ``n >= 1`` an open gap of length ``4^-n`` is removed from the
    middle of each of the ``2^(n-1)`` closed intervals remaining from the
    previous level.  The removed mass totals ``1/2``; what remains is a
    closed, nowhere dense set ``C`` of Lebesgue measure ``1/2``.

    ``max_depth`` bounds the construction depth used by the point queries;
    points that survive ``max_depth`` levels are treated as members (the
    error in :meth:`distance` is at most the width of a depth-``max_depth``
    surviving interval, i.e. well below ``2^-max_depth``).
    """

    max_depth: int = 40

    # -- measure -------------------------------------------------------------

    @property
    def measure(self) -> Fraction:
        """The Lebesgue measure of the (limit) set: exactly 1/2."""
        return Fraction(1, 2)

    def removed_measure_up_to(self, level: int) -> Fraction:
        """The total length removed by the first ``level`` construction steps."""
        return sum(
            (Fraction(2 ** (n - 1), 4**n) for n in range(1, level + 1)), Fraction(0)
        )

    def approximation_measure(self, level: int) -> Fraction:
        """The measure of the level-``level`` approximation (a finite union of
        closed intervals containing ``C``)."""
        return 1 - self.removed_measure_up_to(level)

    # -- gaps ----------------------------------------------------------------

    def gaps_up_to(self, level: int) -> List[Tuple[Fraction, Fraction]]:
        """All gaps removed by the first ``level`` construction steps, sorted."""
        gaps: List[Tuple[Fraction, Fraction]] = []
        intervals = [(Fraction(0), Fraction(1))]
        for n in range(1, level + 1):
            gap_length = Fraction(1, 4**n)
            updated: List[Tuple[Fraction, Fraction]] = []
            for lo, hi in intervals:
                mid = (lo + hi) / 2
                gap = (mid - gap_length / 2, mid + gap_length / 2)
                gaps.append(gap)
                updated.append((lo, gap[0]))
                updated.append((gap[1], hi))
            intervals = updated
        return sorted(gaps)

    # -- point queries ---------------------------------------------------------

    def distance(self, x: Number) -> float:
        """The distance ``d(x, C)`` of Ex. 3.9 (continuous, 1-Lipschitz, with
        zero set exactly ``C`` up to the construction-depth resolution)."""
        value = float(x)
        if value <= 0.0:
            return -value
        if value >= 1.0:
            return value - 1.0
        lo, hi = 0.0, 1.0
        for level in range(1, self.max_depth + 1):
            gap_length = 0.25**level
            mid = (lo + hi) / 2
            gap_lo = mid - gap_length / 2
            gap_hi = mid + gap_length / 2
            if gap_lo < value < gap_hi:
                # The gap's endpoints belong to C.
                return min(value - gap_lo, gap_hi - value)
            if value <= gap_lo:
                hi = gap_lo
            else:
                lo = gap_hi
        return 0.0

    def contains(self, x: Number) -> bool:
        """Membership in the depth-``max_depth`` approximation of ``C``."""
        return self.distance(x) == 0.0


def fat_cantor_set(max_depth: int = 40) -> FatCantorSet:
    """The Smith-Volterra-Cantor set with the given point-query depth."""
    return FatCantorSet(max_depth=max_depth)


def fat_cantor_primitive(max_depth: int = 40, name: str = "dist_svc") -> Primitive:
    """The distance-to-``C`` function as an SPCF primitive (Ex. 3.9).

    The interval extension uses the 1-Lipschitz bound
    ``max(0, max(d(a), d(b)) - (b - a))  <=  d|[a,b]  <=  min(d(a), d(b)) + (b - a)``,
    which is sound but -- because ``C`` is nowhere dense and fat -- can never
    certify ``d <= 0`` on a box of positive width.
    """
    cantor = fat_cantor_set(max_depth)

    def apply(x: Number) -> float:
        return cantor.distance(x)

    def interval_apply(bounds: Tuple[Number, Number]) -> Tuple[Number, Number]:
        lo, hi = float(bounds[0]), float(bounds[1])
        width = hi - lo
        at_lo, at_hi = cantor.distance(lo), cantor.distance(hi)
        lower = max(0.0, max(at_lo, at_hi) - width)
        upper = min(at_lo, at_hi) + width
        return lower, upper

    return Primitive(
        name,
        1,
        apply,
        interval_apply,
        interval_separable=False,
        q_interval_preserving=False,
    )


@dataclass(frozen=True)
class IncompletenessReport:
    """The incompleteness gap of Ex. 3.9 measured on the lower-bound engine."""

    term: Term
    lower_bound: float
    true_probability: float
    set_measure: float
    gap: float

    @property
    def incomplete(self) -> bool:
        """True iff the certified bound provably misses the true probability."""
        return self.lower_bound < self.true_probability - 1e-9


def incompleteness_example(
    max_depth: int = 12,
    sweep_depth: int = 10,
    max_steps: int = 50,
) -> IncompletenessReport:
    """Run the lower-bound engine on Ex. 3.9's program.

    The program ``if dist_svc(sample) then 0 else 1`` is almost surely
    terminating (``Pterm = 1``), yet no interval-trace family can certify more
    than ``1 - lambda(C) = 1/2``: the left branch requires the distance to be
    non-positive on a whole interval, which never happens on a set of positive
    measure.  The returned report records the certified bound and the gap.
    """
    registry = extended_registry(
        base=default_registry(), extras=(fat_cantor_primitive(max_depth),)
    )
    term = If(Prim("dist_svc", (Sample(),)), Numeral(0), Numeral(1))
    engine = LowerBoundEngine(
        strategy=Strategy.CBN,
        registry=registry,
        measure_options=MeasureOptions(sweep_depth=sweep_depth),
    )
    result = engine.lower_bound(term, max_steps=max_steps)
    lower_bound = float(result.probability)
    return IncompletenessReport(
        term=term,
        lower_bound=lower_bound,
        true_probability=1.0,
        set_measure=0.5,
        gap=1.0 - lower_bound,
    )
