"""Inverse-CDF primitives and the extended primitive registry.

The default SPCF registry (:func:`repro.spcf.primitives.default_registry`)
contains the arithmetic and the sigmoid/exp/log primitives the paper's
examples use.  Distribution transforms need a few more inverse-CDF functions;
all of them are continuous and strictly monotone on their domain, hence
interval preserving (Lem. 3.2) and interval separable (Lem. 3.7), except for
``floor`` which is included deliberately as a *non*-interval-preserving
example for the numeric checkers of :mod:`repro.distributions.separability`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional, Tuple, Union

from scipy.special import ndtri

from repro.spcf.primitives import (
    Primitive,
    PrimitiveRegistry,
    default_registry,
)

Number = Union[Fraction, float]
IntervalPair = Tuple[Number, Number]

__all__ = ["extended_registry", "extra_primitives"]

_WIDEN = 1e-12


def _widen(lo: float, hi: float) -> IntervalPair:
    pad_lo = abs(lo) * _WIDEN + _WIDEN
    pad_hi = abs(hi) * _WIDEN + _WIDEN
    return lo - pad_lo, hi + pad_hi


# -- probit (inverse CDF of the standard normal) -----------------------------


def _probit(u: Number) -> float:
    value = float(u)
    if not 0.0 < value < 1.0:
        raise ValueError("probit is only defined on (0, 1)")
    return float(ndtri(value))


def _interval_probit(a: IntervalPair) -> IntervalPair:
    lo, hi = float(a[0]), float(a[1])
    if lo <= 0.0 or hi >= 1.0:
        raise ValueError("probit interval extension requires endpoints inside (0, 1)")
    return _widen(float(ndtri(lo)), float(ndtri(hi)))


# -- logit --------------------------------------------------------------------


def _logit(u: Number) -> float:
    value = float(u)
    if not 0.0 < value < 1.0:
        raise ValueError("logit is only defined on (0, 1)")
    return math.log(value / (1.0 - value))


def _interval_logit(a: IntervalPair) -> IntervalPair:
    lo, hi = float(a[0]), float(a[1])
    if lo <= 0.0 or hi >= 1.0:
        raise ValueError("logit interval extension requires endpoints inside (0, 1)")
    return _widen(_logit(lo), _logit(hi))


# -- Cauchy inverse CDF --------------------------------------------------------


def _cauchy_icdf(u: Number) -> float:
    value = float(u)
    if not 0.0 < value < 1.0:
        raise ValueError("the Cauchy inverse CDF is only defined on (0, 1)")
    return math.tan(math.pi * (value - 0.5))


def _interval_cauchy(a: IntervalPair) -> IntervalPair:
    lo, hi = float(a[0]), float(a[1])
    if lo <= 0.0 or hi >= 1.0:
        raise ValueError("the Cauchy interval extension requires endpoints inside (0, 1)")
    return _widen(_cauchy_icdf(lo), _cauchy_icdf(hi))


# -- square root ---------------------------------------------------------------


def _sqrt(x: Number) -> float:
    value = float(x)
    if value < 0.0:
        raise ValueError("sqrt of a negative number")
    return math.sqrt(value)


def _interval_sqrt(a: IntervalPair) -> IntervalPair:
    lo, hi = float(a[0]), float(a[1])
    if lo < 0.0:
        raise ValueError("sqrt interval extension requires a non-negative lower bound")
    widened_lo, widened_hi = _widen(math.sqrt(lo), math.sqrt(hi))
    return max(widened_lo, 0.0), widened_hi


# -- floor: a deliberately non-interval-preserving primitive -------------------


def _floor(x: Number) -> Number:
    if isinstance(x, Fraction):
        return Fraction(math.floor(x))
    return float(math.floor(x))


def _interval_floor(a: IntervalPair) -> IntervalPair:
    # The true image of [a, b] under floor is a *finite set* of integers, not
    # an interval; the extension below is a sound over-approximation, which is
    # all interval evaluation needs, but the function is not interval
    # preserving in the sense of Def. 3.1.
    return _floor(a[0]), _floor(a[1])


def extra_primitives() -> Tuple[Primitive, ...]:
    """The inverse-CDF (and counterexample) primitives added by this module."""
    return (
        Primitive("probit", 1, _probit, _interval_probit, q_interval_preserving=False),
        Primitive("logit", 1, _logit, _interval_logit, q_interval_preserving=False),
        Primitive(
            "cauchy_icdf", 1, _cauchy_icdf, _interval_cauchy, q_interval_preserving=False
        ),
        Primitive("sqrt", 1, _sqrt, _interval_sqrt, q_interval_preserving=False),
        Primitive("floor", 1, _floor, _interval_floor),
    )


def extended_registry(
    base: Optional[PrimitiveRegistry] = None,
    extras: Optional[Tuple[Primitive, ...]] = None,
) -> PrimitiveRegistry:
    """A fresh registry containing the default primitives plus the extras.

    The default registry object is shared across the package, so this builds
    a new one rather than mutating it.
    """
    base = base or default_registry()
    registry = PrimitiveRegistry()
    for name in base.names():
        registry.register(base[name])
    for primitive in extras if extras is not None else extra_primitives():
        if primitive.name not in registry:
            registry.register(primitive)
    return registry
