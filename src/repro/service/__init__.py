"""The analysis daemon: one hot engine, many clients, coalesced requests.

``python -m repro serve --socket PATH`` turns the reproduction from a
batch-shaped CLI into a servable system: a long-lived asyncio process owns a
single memoizing :class:`~repro.geometry.engine.MeasureEngine` (plus named
resumable :class:`~repro.lowerbound.engine.LowerBoundSession`\\ s) and
serves ``measure`` / ``lower-bound`` / ``lower-bound-schedule`` / ``table1``
/ ``papprox`` requests from many concurrent clients over newline-delimited
JSON-RPC 2.0 on a Unix socket.

* :mod:`repro.service.protocol` -- framing, request/response envelopes,
  error codes;
* :mod:`repro.service.daemon`   -- :class:`~repro.service.daemon.AnalysisDaemon`:
  the event loop, the single engine thread, in-flight request coalescing,
  sessions, persistence and telemetry;
* :mod:`repro.service.client`   -- :class:`~repro.service.client.ServiceClient`:
  the blocking client used by ``python -m repro call``, the tests and the
  CI smoke job.

Results are byte-identical to one-shot CLI runs: a request is executed as
the same :class:`~repro.batch.jobs.JobSpec` -> :func:`~repro.batch.jobs.run_job`
pipeline the batch runner uses, so the deterministic payload dictionary a
client receives is exactly a ``repro batch`` JSONL line's.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import AnalysisDaemon, serve
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    result_response,
)

__all__ = [
    "AnalysisDaemon",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "error_response",
    "result_response",
    "serve",
]
