"""``AnalysisDaemon``: the long-lived analysis service behind ``repro serve``.

One daemon process owns

* a single hot :class:`~repro.geometry.engine.MeasureEngine`, seeded from
  the persistent store at startup, so every client draws from one memo
  table and nobody pays store hydration per request;
* a dedicated **engine thread** (a one-worker executor): the engine and its
  session objects are single-threaded by construction, so every
  computation -- and every store write -- runs there, while the asyncio
  event loop multiplexes any number of client connections around it;
* an **in-flight coalescing map** keyed by the same content hashes the
  persistent stores use (:meth:`~repro.batch.jobs.JobSpec.key`, built on
  the engine's ``persistent_key`` canonicalization): a request identical to
  one already computing does not queue a second computation -- it awaits
  the same future and receives the same result object *before* the first
  client has even been answered.  Each join is counted and emitted as a
  ``coalesce-hit`` telemetry event;
* named :class:`~repro.lowerbound.engine.LowerBoundSession` objects: a
  client passing ``session: NAME`` to ``lower-bound`` deepens a resumable
  anytime computation across requests (budgets non-decreasing per session),
  sharing it with every other client that names the same session.

Results are **byte-identical to one-shot CLI runs**: requests execute as
the exact :class:`~repro.batch.jobs.JobSpec` -> :func:`~repro.batch.jobs.run_job`
pipeline the batch runner uses, the payload dictionary included.  With a
``--cache-dir``, finished jobs and fresh measure/sweep entries are persisted
after every computation (the same envelopes, same GC touch stamps), so the
daemon and the batch CLI interoperate on one store.

The daemon is a full telemetry emitter: armed with ``--trace`` it wraps
every request in a ``request`` span and emits ``coalesce-hit`` events, so
``repro trace summarize`` / ``trace watch`` work unchanged against a live
service.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import repro.telemetry as telemetry
from repro.batch.jobs import ANALYSES, JobResult, JobSpec, run_job
from repro.config import ReproConfig
from repro.geometry.engine import MeasureEngine
from repro.service import protocol
from repro.service.protocol import ProtocolError

__all__ = ["AnalysisDaemon", "DaemonCounters", "serve"]

_MAX_REQUEST_BYTES = 4 * 1024 * 1024
"""Per-line read limit: an analysis request is small; a 4 MiB line is not
a request."""


@dataclass
class DaemonCounters:
    """The daemon's own bookkeeping, served verbatim by the ``stats`` method.

    The coalescing acceptance check reads as
    ``computations + job_cache_hits + coalesced == requests`` for the
    analysis methods: every request was either computed, answered from the
    persistent job store, or joined an in-flight twin.
    """

    requests: int = 0
    coalesced: int = 0
    computations: int = 0
    job_cache_hits: int = 0
    errors: int = 0
    connections: int = 0
    sessions_evicted: int = 0
    by_method: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "computations": self.computations,
            "job_cache_hits": self.job_cache_hits,
            "errors": self.errors,
            "connections": self.connections,
            "sessions_evicted": self.sessions_evicted,
            "by_method": dict(sorted(self.by_method.items())),
        }


class AnalysisDaemon:
    """The service core: methods, coalescing, sessions, persistence.

    Separable from the socket server so tests can drive it in-process; the
    public entry point is :func:`serve` / ``python -m repro serve``.
    """

    def __init__(
        self,
        config: Optional[ReproConfig] = None,
        engine: Optional[MeasureEngine] = None,
    ) -> None:
        self.config = config or ReproConfig()
        self.engine = engine if engine is not None else self.config.measure_engine()
        self.store = self.config.open_store()
        self.counters = DaemonCounters()
        self.started_monotonic = time.monotonic()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        # name -> (program, LowerBoundSession, {depth: trajectory row}).
        # With a store, each session's frontier is persisted after every
        # extend (and on eviction/close) and restored on creation, so the
        # exploration survives daemon restarts and is shared with CLI
        # schedule runs over the same program.
        self._sessions: Dict[str, Tuple[str, Any, Dict[int, dict]]] = {}
        # Last-touch stamp per named session (monotonic seconds), the basis
        # of the --session-ttl / --max-sessions eviction policy.
        self._session_touched: Dict[str, float] = {}
        self._stopping = asyncio.Event()
        self._run: Optional[int] = None
        self._seed_from_store()

    # -- lifecycle -------------------------------------------------------------

    def _seed_from_store(self) -> None:
        """Hydrate the hot engine once, at startup -- the cost every CLI
        invocation used to pay per run."""
        if self.store is None:
            return
        self.engine.import_cache_entries(self.store.load_measures(self.engine))
        self.engine.import_sweep_entries(self.store.load_sweeps(self.engine))
        self._run = self.store.begin_run()

    def close(self) -> None:
        """Flush GC touch stamps and release the engine thread."""
        for program, session, rows in self._sessions.values():
            # Live sessions survive an orderly shutdown the same way evicted
            # ones do: frontier + trajectory to the store.
            self._persist_frontier(program, session, rows)
        if self.store is not None:
            touched_measures, touched_sweeps = self.engine.drain_persistent_hit_keys()
            self.store.merge_measures(
                self.engine,
                self.engine.export_cache_entries(),
                run=self._run,
                touched_keys=touched_measures,
            )
            self.store.merge_sweeps(
                self.engine,
                self.engine.export_sweep_entries(),
                run=self._run,
                touched_keys=touched_sweeps,
            )
        telemetry.emit_counters(self.engine.stats)
        self._executor.shutdown(wait=True)

    @property
    def stopping(self) -> asyncio.Event:
        return self._stopping

    # -- request dispatch ------------------------------------------------------

    async def dispatch(self, method: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request; raises :class:`ProtocolError` on bad input."""
        self.counters.requests += 1
        self.counters.by_method[method] = self.counters.by_method.get(method, 0) + 1
        with telemetry.span("request", method=method):
            try:
                return await self._dispatch_inner(method, params)
            except ProtocolError:
                self.counters.errors += 1
                raise
            except Exception as exc:
                self.counters.errors += 1
                raise ProtocolError(
                    protocol.INTERNAL_ERROR, f"{type(exc).__name__}: {exc}"
                )

    async def _dispatch_inner(
        self, method: str, params: Dict[str, Any]
    ) -> Dict[str, Any]:
        if method == "ping":
            return {
                "pid": os.getpid(),
                "protocol": protocol.PROTOCOL_VERSION,
                "uptime_seconds": round(time.monotonic() - self.started_monotonic, 3),
            }
        if method == "stats":
            return self.stats()
        if method == "shutdown":
            self._stopping.set()
            return {"stopping": True}
        if method == "measure":
            return await self._measure(params)
        if method == "table1":
            return await self._table1(params)
        if method in ANALYSES:
            if method == "lower-bound" and "session" in params:
                return await self._session_extend(params)
            spec = self._job_spec(method, params)
            result, cached, coalesced = await self._job_result(spec)
            return self._job_response(result, cached, coalesced)
        raise ProtocolError(protocol.METHOD_NOT_FOUND, f"unknown method {method!r}")

    def stats(self) -> Dict[str, Any]:
        return {
            "counters": self.counters.as_dict(),
            "engine": self.engine.stats.as_dict(),
            "inflight": len(self._inflight),
            "sessions": {
                name: {"program": program, "max_steps": session.max_steps}
                for name, (program, session, _rows) in sorted(self._sessions.items())
            },
            "sessions_live": len(self._sessions),
            "sessions_evicted": self.counters.sessions_evicted,
            "store": {
                "backend": type(self.store).__name__ if self.store else None,
                "directory": self.config.cache_dir,
            },
            "uptime_seconds": round(time.monotonic() - self.started_monotonic, 3),
        }

    # -- the coalesced job pipeline --------------------------------------------

    def _job_spec(self, analysis: str, params: Dict[str, Any]) -> JobSpec:
        program = params.get("program")
        if not isinstance(program, str) or not program:
            raise ProtocolError(
                protocol.INVALID_PARAMS, f"{analysis} requires a 'program' string"
            )
        job_params = {
            key: value
            for key, value in params.items()
            if key not in ("program", "session")
        }
        if "schedule" in job_params and isinstance(job_params["schedule"], list):
            job_params["schedule"] = tuple(job_params["schedule"])
        try:
            return JobSpec(program=program, analysis=analysis, params=job_params)
        except ValueError as error:
            raise ProtocolError(protocol.INVALID_PARAMS, str(error))

    async def _job_result(self, spec: JobSpec) -> Tuple[JobResult, bool, bool]:
        """Run ``spec`` through cache + coalescing -> (result, cached, joined).

        The coalesce key is the job's content hash -- the same
        ``persistent_key``-derived identity the stores use -- so "identical
        request" means identical resolved program, analysis and canonical
        parameters, not identical request text.
        """
        try:
            key = spec.key()
        except Exception:
            # An unkeyable spec (unparseable program) cannot coalesce or
            # cache; run_job turns it into a structured error result.
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._executor, lambda: run_job(spec, self.engine)
            )
            return result, False, False

        existing = self._inflight.get(key)
        if existing is not None:
            self.counters.coalesced += 1
            telemetry.emit("coalesce-hit", method=spec.analysis, key=key)
            result, cached = await asyncio.shield(existing)
            return result, cached, True

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # A coalesced awaiter may be cancelled before retrieving an error;
        # mark the exception retrieved so the loop never logs a leak.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = future
        try:
            result, cached = await loop.run_in_executor(
                self._executor, lambda: self._compute_job(spec, key)
            )
        except BaseException as exc:
            future.set_exception(exc)
            raise
        else:
            future.set_result((result, cached))
            return result, cached, False
        finally:
            self._inflight.pop(key, None)

    def _compute_job(self, spec: JobSpec, key: str) -> Tuple[JobResult, bool]:
        """Engine-thread half of a job request: cache probe, compute, persist."""
        if self.store is not None:
            cached = self.store.load_job(key)
            if cached is not None:
                self.counters.job_cache_hits += 1
                return cached, True
        self.counters.computations += 1
        result = run_job(spec, self.engine)
        if self.store is not None:
            self.store.store_job(result)
            touched_measures, touched_sweeps = self.engine.drain_persistent_hit_keys()
            self.store.merge_measures(
                self.engine,
                self.engine.export_cache_entries(),
                run=self._run,
                touched_keys=touched_measures,
            )
            self.store.merge_sweeps(
                self.engine,
                self.engine.export_sweep_entries(),
                run=self._run,
                touched_keys=touched_sweeps,
            )
        return result, False

    @staticmethod
    def _job_response(
        result: JobResult, cached: bool, coalesced: bool
    ) -> Dict[str, Any]:
        # "job" is byte-identical (as canonical JSON) to the batch CLI's
        # JSONL line for the same spec; the flags are daemon bookkeeping.
        return {
            "job": result.deterministic_dict(),
            "cached": cached,
            "coalesced": coalesced,
            "elapsed_ms": round(result.elapsed_ms, 3),
        }

    # -- methods beyond plain jobs ---------------------------------------------

    async def _measure(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The minimal engine query: program + depth -> certified bound.

        Sugar over ``lower-bound`` sharing its coalesce key, so a ``measure``
        and a ``lower-bound`` for the same program join the same in-flight
        computation.
        """
        allowed = {"program", "depth", "max_paths"}
        unknown = set(params) - allowed
        if unknown:
            raise ProtocolError(
                protocol.INVALID_PARAMS, f"unknown parameter(s) {sorted(unknown)}"
            )
        spec = self._job_spec("lower-bound", params)
        result, cached, coalesced = await self._job_result(spec)
        if not result.ok:
            raise ProtocolError(
                protocol.ANALYSIS_ERROR, result.error or "analysis failed"
            )
        payload = result.payload or {}
        return {
            "program": spec.program,
            "probability": payload.get("probability"),
            "measure_gap": payload.get("measure_gap"),
            "path_count": payload.get("path_count"),
            "exhaustive": payload.get("exhaustive"),
            "cached": cached,
            "coalesced": coalesced,
        }

    async def _table1(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """The paper's Table 1, one coalesced job per program, concurrently.

        Concurrent ``table1`` requests -- or a ``table1`` racing individual
        ``lower-bound`` requests for member programs -- share per-program
        computations through the same in-flight map.
        """
        from repro.batch.suites import table1_suite

        allowed = {"depth"}
        unknown = set(params) - allowed
        if unknown:
            raise ProtocolError(
                protocol.INVALID_PARAMS, f"unknown parameter(s) {sorted(unknown)}"
            )
        depth = params.get("depth", 50)
        if not isinstance(depth, int) or depth <= 0:
            raise ProtocolError(protocol.INVALID_PARAMS, "'depth' must be a positive int")
        specs = table1_suite(depth=depth)
        outcomes = await asyncio.gather(
            *(self._job_result(spec) for spec in specs)
        )
        return {
            "depth": depth,
            "rows": [
                self._job_response(result, cached, coalesced)
                for result, cached, coalesced in outcomes
            ],
        }

    async def _session_extend(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``lower-bound`` with ``session: NAME``: deepen a shared anytime
        session.  Session requests serialize on the engine thread and are
        inherently stateful, so they bypass the coalescing map."""
        name = params.get("session")
        if not isinstance(name, str) or not name:
            raise ProtocolError(protocol.INVALID_PARAMS, "'session' must be a name")
        program = params.get("program")
        if not isinstance(program, str) or not program:
            raise ProtocolError(protocol.INVALID_PARAMS, "'program' is required")
        depth = params.get("depth", 50)
        if not isinstance(depth, int) or depth <= 0:
            raise ProtocolError(protocol.INVALID_PARAMS, "'depth' must be a positive int")
        max_paths = params.get("max_paths", 200_000)
        loop = asyncio.get_running_loop()
        try:
            result, session_depth = await loop.run_in_executor(
                self._executor,
                lambda: self._extend_session(name, program, depth, max_paths),
            )
        except ValueError as error:
            raise ProtocolError(protocol.INVALID_PARAMS, str(error))
        from repro.batch.jobs import encode_number

        return {
            "session": name,
            "program": program,
            "depth": result.max_steps,
            "session_max_steps": session_depth,
            "probability": encode_number(result.probability),
            "expected_steps": encode_number(result.expected_steps),
            "measure_gap": encode_number(result.measure_gap),
            "anytime_gap": encode_number(result.anytime_gap()),
            "path_count": result.path_count,
            "exhaustive": result.exhaustive,
            "exact_measures": result.exact_measures,
        }

    def _evict_sessions(self, keep: Optional[str] = None) -> None:
        """Apply the session GC policy (engine thread only).

        ``--session-ttl`` evicts sessions idle longer than the TTL;
        ``--max-sessions`` then evicts least-recently-used sessions past
        the cap.  ``keep`` -- the session the current request touches -- is
        never evicted: it is in use by definition, and the cap is floored
        at one so the active session always fits.
        """
        ttl = self.config.session_ttl
        cap = self.config.max_sessions
        if ttl is None and cap is None:
            return
        now = time.monotonic()
        if ttl is not None:
            for name in [
                name
                for name, touched in self._session_touched.items()
                if name != keep and now - touched > ttl
            ]:
                self._evict_session(name, "idle", now)
        if cap is not None:
            cap = max(1, cap)
            while len(self._sessions) > cap:
                victims = [name for name in self._sessions if name != keep]
                if not victims:
                    break
                victim = min(
                    victims, key=lambda name: self._session_touched.get(name, 0.0)
                )
                self._evict_session(victim, "capacity", now)

    def _evict_session(self, name: str, reason: str, now: float) -> None:
        program, session, rows = self._sessions.pop(name)
        # An evicted session's exploration is not lost: its frontier (and
        # recorded trajectory) goes to the store, so the next client naming
        # it -- or a CLI schedule over the same program -- resumes the math.
        self._persist_frontier(program, session, rows)
        idle = now - self._session_touched.pop(name, now)
        self.counters.sessions_evicted += 1
        telemetry.emit(
            "session-evicted",
            session=name,
            program=program,
            reason=reason,
            idle_seconds=round(idle, 3),
            max_steps=session.max_steps,
        )

    def _persist_frontier(self, program: str, session, rows: Dict[int, dict]) -> None:
        """Write a session's encoded frontier + trajectory to the store."""
        if self.store is None:
            return
        from repro.batch.distribute import frontier_entry, frontier_key
        from repro.programs import resolve_program
        from repro.symbolic.codec import encode_session

        exploration = session.exploration
        key = frontier_key(resolve_program(program), exploration.max_paths)
        ordered = [rows[depth] for depth in sorted(rows)]
        self.store.merge_frontiers(
            self.engine,
            {key: frontier_entry(encode_session(exploration), ordered)},
            run=self._run,
        )
        telemetry.emit(
            "frontier-saved",
            key=key,
            depth=exploration.max_steps,
            nodes=len(exploration._nodes),
        )

    def _restore_frontier(self, bound_engine, resolved, depth: int, max_paths: int):
        """A persisted exploration for this program, if one fits the request.

        Restores with ``credit_stats=False``: the daemon's counters describe
        work *this process* did, and a restored frontier's steps were done
        elsewhere (or already counted here before an eviction).  Only a
        frontier at most as deep as the requested budget is adopted --
        session budgets are non-decreasing.
        """
        if self.store is None:
            return None, {}
        from repro.batch.distribute import frontier_entry_parts, frontier_key
        from repro.symbolic.codec import decode_session

        key = frontier_key(resolved, max_paths)
        parts = frontier_entry_parts(self.store.load_frontier_entry(self.engine, key))
        if parts is None:
            return None, {}
        exploration = decode_session(
            parts[0], bound_engine._explorer, credit_stats=False
        )
        if exploration is None or exploration.max_steps > depth:
            return None, {}
        rows = {
            row["depth"]: row
            for row in parts[1]
            if isinstance(row.get("depth"), int) and row["depth"] <= depth
        }
        telemetry.emit(
            "frontier-resumed",
            key=key,
            depth=exploration.max_steps,
            nodes=len(exploration._nodes),
        )
        return exploration, rows

    def _extend_session(self, name: str, program: str, depth: int, max_paths: int):
        from repro.lowerbound.engine import LowerBoundEngine
        from repro.programs import resolve_program

        # Idle sessions are reaped before the lookup so a TTL-expired
        # session cannot be deepened by accident -- except the requested one,
        # which is being used right now and therefore stops being idle.
        self._evict_sessions(keep=name)
        entry = self._sessions.get(name)
        if entry is not None and entry[0] != program:
            raise ValueError(
                f"session {name!r} belongs to program {entry[0]!r}, not {program!r}"
            )
        if entry is None:
            resolved = resolve_program(program)
            bound_engine = LowerBoundEngine(
                strategy=resolved.strategy, measure_engine=self.engine
            )
            exploration, rows = self._restore_frontier(
                bound_engine, resolved, depth, max_paths
            )
            session = bound_engine.session(
                resolved.applied, max_paths=max_paths, exploration=exploration
            )
            self._sessions[name] = (program, session, rows)
        else:
            session, rows = entry[1], entry[2]
        if depth < session.max_steps:
            raise ValueError(
                f"session {name!r} is already at depth {session.max_steps}; "
                "budgets are non-decreasing"
            )
        self.counters.computations += 1
        result = session.extend(depth)
        from repro.batch.jobs import encode_number

        rows[depth] = {
            "depth": result.max_steps,
            "probability": encode_number(result.probability),
            "expected_steps": encode_number(result.expected_steps),
            "measure_gap": encode_number(result.measure_gap),
            "anytime_gap": encode_number(result.anytime_gap()),
            "path_count": result.path_count,
            "exhaustive": result.exhaustive,
            "exact_measures": result.exact_measures,
        }
        self._persist_frontier(program, session, rows)
        self._session_touched[name] = time.monotonic()
        # A newly created session can push the population past the cap.
        self._evict_sessions(keep=name)
        return result, session.max_steps


# ---------------------------------------------------------------------------
# The socket server.
# ---------------------------------------------------------------------------


async def _handle_connection(
    daemon: AnalysisDaemon,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    daemon.counters.connections += 1
    write_lock = asyncio.Lock()
    tasks: set = set()

    async def answer(response: Dict[str, Any]) -> None:
        line = json.dumps(response, sort_keys=True, separators=(",", ":")) + "\n"
        async with write_lock:
            writer.write(line.encode("utf-8"))
            await writer.drain()

    async def serve_one(record: Any) -> Dict[str, Any]:
        try:
            request_id, method, params = protocol.parse_request(record)
        except ProtocolError as error:
            daemon.counters.errors += 1
            return protocol.error_response(None, error.code, str(error))
        try:
            result = await daemon.dispatch(method, params)
        except ProtocolError as error:
            return protocol.error_response(request_id, error.code, str(error))
        return protocol.result_response(request_id, result)

    async def serve_line(record: Any) -> None:
        if isinstance(record, list):
            # JSON-RPC batch: *create* every request task before awaiting
            # any, so identical requests of one batch always coalesce.
            if not record:
                await answer(
                    protocol.error_response(
                        None, protocol.INVALID_REQUEST, "empty batch"
                    )
                )
                return
            batch = [asyncio.ensure_future(serve_one(item)) for item in record]
            responses = await asyncio.gather(*batch)
            line = json.dumps(
                list(responses), sort_keys=True, separators=(",", ":")
            ) + "\n"
            async with write_lock:
                writer.write(line.encode("utf-8"))
                await writer.drain()
            return
        await answer(await serve_one(record))

    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await answer(
                    protocol.error_response(
                        None, protocol.PARSE_ERROR, "request line too long"
                    )
                )
                break
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except ValueError:
                await answer(
                    protocol.error_response(
                        None, protocol.PARSE_ERROR, "request is not valid JSON"
                    )
                )
                continue
            # Each request line runs in its own task so one slow analysis
            # never blocks this connection's next request from *entering*
            # the coalescing map.
            task = asyncio.ensure_future(serve_line(record))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    except ConnectionResetError:
        pass
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()


async def serve(
    socket_path: Union[str, Path],
    config: Optional[ReproConfig] = None,
    daemon: Optional[AnalysisDaemon] = None,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """Run the daemon on a Unix socket until ``shutdown`` or a signal.

    The socket file is created fresh (a stale one from a dead daemon is
    replaced) and removed on orderly exit.  ``ready`` is set once the
    socket accepts connections -- the in-process hook the tests use.
    """
    socket_path = Path(socket_path)
    daemon = daemon or AnalysisDaemon(config=config)
    if socket_path.exists():
        socket_path.unlink()
    socket_path.parent.mkdir(parents=True, exist_ok=True)
    connections: set = set()

    def _on_connect(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        task = asyncio.ensure_future(_handle_connection(daemon, reader, writer))
        connections.add(task)
        task.add_done_callback(connections.discard)

    server = await asyncio.start_unix_server(
        _on_connect, path=str(socket_path), limit=_MAX_REQUEST_BYTES
    )
    loop = asyncio.get_running_loop()
    for signal_name in ("SIGINT", "SIGTERM"):
        import signal as _signal

        # RuntimeError/ValueError: handlers can only be installed from the
        # main thread (the in-process test servers run the loop elsewhere).
        with contextlib.suppress(
            NotImplementedError, AttributeError, ValueError, RuntimeError
        ):
            loop.add_signal_handler(
                getattr(_signal, signal_name), daemon.stopping.set
            )
    if ready is not None:
        ready.set()
    try:
        async with server:
            await daemon.stopping.wait()
    finally:
        for connection in list(connections):
            connection.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        daemon.close()
        with contextlib.suppress(OSError):
            socket_path.unlink()
