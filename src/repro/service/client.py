"""``ServiceClient``: the blocking Unix-socket client of the analysis daemon.

Used by ``python -m repro call``, the test suite and the CI smoke job.  One
client holds one connection; :meth:`ServiceClient.call` sends a single
request and blocks for its response, :meth:`ServiceClient.call_batch` sends
a JSON-RPC batch array -- the deterministic way to put many requests in
flight at once (the daemon registers every request of a batch in its
coalescing map before any computation can finish).

The client is intentionally synchronous and stdlib-only: the daemon does
the multiplexing; a client that wants concurrency opens more clients (one
per thread) or batches.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A JSON-RPC error response, carrying the daemon's code and message."""

    def __init__(self, code: int, message: str, data: Optional[dict] = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.data = data


class ServiceClient:
    """A connected client; usable as a context manager.

    ::

        with ServiceClient(socket_path) as client:
            bound = client.call("lower-bound", {"program": "geo(1/2)", "depth": 60})
    """

    def __init__(
        self, socket_path: Union[str, Path], timeout: Optional[float] = 300.0
    ) -> None:
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._next_id = 0

    # -- plumbing --------------------------------------------------------------

    def _send(self, payload: Any) -> None:
        line = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        self._sock.sendall(line.encode("utf-8"))

    def _receive(self) -> Any:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def _request(self, method: str, params: Optional[Dict[str, Any]]) -> dict:
        self._next_id += 1
        return {
            "jsonrpc": protocol.PROTOCOL_VERSION,
            "id": self._next_id,
            "method": method,
            "params": params or {},
        }

    @staticmethod
    def _unwrap(response: Any) -> Any:
        if not isinstance(response, dict):
            raise ServiceError(
                protocol.PARSE_ERROR, f"malformed response: {response!r}"
            )
        if "error" in response:
            error = response["error"] or {}
            raise ServiceError(
                error.get("code", protocol.INTERNAL_ERROR),
                error.get("message", "unknown error"),
                error.get("data"),
            )
        return response.get("result")

    # -- API -------------------------------------------------------------------

    def call(self, method: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """One request, one blocking wait, the unwrapped ``result``.

        Raises :class:`ServiceError` on a JSON-RPC error response.
        """
        request = self._request(method, params)
        self._send(request)
        # The daemon answers this connection's single-object requests in
        # completion order; with one request outstanding that is this one.
        response = self._receive()
        if isinstance(response, dict) and response.get("id") != request["id"]:
            raise ServiceError(
                protocol.INTERNAL_ERROR,
                f"response id {response.get('id')!r} != request id {request['id']!r}",
            )
        return self._unwrap(response)

    def call_batch(
        self, calls: List[Dict[str, Any]]
    ) -> List[Any]:
        """Send ``[{"method": ..., "params": {...}}, ...]`` as one JSON-RPC
        batch; returns unwrapped results in request order.

        All requests of the batch are in flight on the daemon before any
        completes, so identical entries coalesce deterministically.  A
        failed entry raises :class:`ServiceError` (after the whole batch
        has been received).
        """
        requests = [
            self._request(entry["method"], entry.get("params")) for entry in calls
        ]
        self._send(requests)
        responses = self._receive()
        if not isinstance(responses, list):
            return [self._unwrap(responses)]
        by_id = {
            response.get("id"): response
            for response in responses
            if isinstance(response, dict)
        }
        results = []
        for request in requests:
            response = by_id.get(request["id"])
            if response is None:
                raise ServiceError(
                    protocol.INTERNAL_ERROR,
                    f"no response for request id {request['id']}",
                )
            results.append(self._unwrap(response))
        return results

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
