"""The wire protocol of the analysis daemon: JSON-RPC 2.0 over lines.

One request or response per ``\\n``-terminated line of UTF-8 JSON on a Unix
stream socket -- the simplest framing that still lets a client pipeline
requests and a reader debug the stream with ``nc -U`` and eyes.  The subset
of JSON-RPC 2.0 implemented here:

* request:  ``{"jsonrpc": "2.0", "id": <int|str>, "method": <str>,
  "params": {...}}`` -- ``params`` is always an object, defaulting empty;
* success:  ``{"jsonrpc": "2.0", "id": ..., "result": {...}}``;
* error:    ``{"jsonrpc": "2.0", "id": ..., "error": {"code": <int>,
  "message": <str>, "data": {...}?}}``;
* batch:    a JSON *array* of requests answers with an array of responses
  in the same order.  Batched identical requests are the deterministic way
  to exercise request coalescing: every request of the array is in flight
  before the first computation can finish.

Notifications (requests without ``id``) are not supported: every analysis
request deserves its answer.  Responses to one connection are serialized by
a per-connection writer lock, but responses may interleave *across*
requests in completion order -- clients correlate by ``id``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

PROTOCOL_VERSION = "2.0"

# JSON-RPC 2.0 error codes (plus the implementation-defined -32000 range).
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
ANALYSIS_ERROR = -32000
"""The analysis itself failed (a structured ``JobResult`` error)."""

SHUTTING_DOWN = -32001
"""The daemon is draining; retry against a fresh instance."""

__all__ = [
    "ANALYSIS_ERROR",
    "INTERNAL_ERROR",
    "INVALID_PARAMS",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "PARSE_ERROR",
    "PROTOCOL_VERSION",
    "SHUTTING_DOWN",
    "ProtocolError",
    "error_response",
    "parse_request",
    "result_response",
]


class ProtocolError(Exception):
    """A malformed request, carrying the JSON-RPC error code to answer with."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


def parse_request(record: Any) -> Tuple[Union[int, str], str, Dict[str, Any]]:
    """Validate one decoded request object -> ``(id, method, params)``."""
    if not isinstance(record, dict):
        raise ProtocolError(INVALID_REQUEST, "request is not a JSON object")
    if record.get("jsonrpc") != PROTOCOL_VERSION:
        raise ProtocolError(
            INVALID_REQUEST, f"missing or wrong 'jsonrpc' (expected {PROTOCOL_VERSION!r})"
        )
    request_id = record.get("id")
    if not isinstance(request_id, (int, str)) or isinstance(request_id, bool):
        raise ProtocolError(INVALID_REQUEST, "missing or non-int/str request 'id'")
    method = record.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(INVALID_REQUEST, "missing request 'method'")
    params = record.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(INVALID_PARAMS, "'params' must be an object")
    return request_id, method, params


def result_response(request_id: Union[int, str], result: Any) -> Dict[str, Any]:
    return {"jsonrpc": PROTOCOL_VERSION, "id": request_id, "result": result}


def error_response(
    request_id: Optional[Union[int, str]],
    code: int,
    message: str,
    data: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": PROTOCOL_VERSION, "id": request_id, "error": error}
