"""The telemetry event schema: one JSON object per line, versioned.

Every line of a trace file is a self-contained JSON object with four
reserved fields::

    {"v": 1, "ev": "span-end", "t": 0.0123, "seq": 17, "pid": 4242, ...}

* ``v``   -- the schema version of this line (:data:`SCHEMA_VERSION`);
* ``ev``  -- the event kind, one of :data:`EVENT_KINDS`;
* ``t``   -- seconds since the writing process opened its trace file,
  measured on the monotonic clock (never wall clock, never comparable
  across processes);
* ``seq`` -- the writing process's own line counter (gapless per ``pid``);
* ``pid`` -- the writing process.

Everything else is event-specific payload, flat in the same object.  Spans
come as ``span-start`` / ``span-end`` pairs correlated by ``sid`` (unique
per writer); the ``span-end`` carries the monotonic duration ``dur`` plus
whatever attributes the instrumented code attached.  ``counters`` events
snapshot a :class:`~repro.geometry.stats.PerfStats` dictionary -- the
counter names are the dataclass field names, whose human labels live in the
same field metadata that renders ``PerfStats.summary()``, so the stream and
the summary can never drift apart.

The stream is append-only and line-buffered: a crashed process leaves at
worst one torn final line, which every reader (the summarizer, the watcher,
``repro doctor --trace``) tolerates and counts rather than chokes on.
"""

from __future__ import annotations

from typing import Optional

SCHEMA_VERSION = 1

ENV_VAR = "REPRO_TRACE"
"""Workers inherit this variable; it names the supervisor's trace path."""

WORKER_SUFFIX = ".worker-"
"""Worker processes write ``<trace-path>.worker-<pid>`` side files."""

EVENT_KINDS = (
    "trace-start",  # first line of every file: schema + command
    "trace-end",    # written by an orderly close (a live trace lacks it)
    "span-start",   # {span, sid}
    "span-end",     # {span, sid, dur, ...attrs}
    "counters",     # {counters: {PerfStats field: value}}
    "anytime-bound",       # {depth, lower, gap, paths, exhaustive}
    "sweep-warm-start",    # {resumed_depth}
    "job-scheduled",       # {job, program, analysis}
    "job-started",         # {job, program, analysis} (worker side)
    "job-completed",       # {program, analysis, status, cached, elapsed_ms}
    "job-retried",         # {job, attempts, kind, delay}
    "job-timeout",         # {job, budget}
    "worker-restart",      # {reason}
    "store-merge",         # {kind, written, touched}
    "quarantine",          # {path, reason}
    "trace-merged",        # {source, events, torn} (worker-file merges)
    "warning",             # {code, message?, count?, path?}
    "coalesce-hit",        # {method, key} (daemon: request joined an
                           # identical in-flight computation)
    "session-evicted",     # {session, program, reason, idle_seconds,
                           # max_steps} (daemon: named session evicted by
                           # --session-ttl / --max-sessions)
    "frontier-saved",      # {key, depth, nodes} (exploration frontier
                           # persisted to the store)
    "frontier-resumed",    # {key, depth, nodes} (persisted frontier
                           # restored instead of re-exploring)
    "shard-claimed",       # {key, shard, preferred} (worker claimed its
                           # assigned frontier shard)
    "shard-stolen",        # {key, shard, preferred} (idle worker stole an
                           # unclaimed shard from another assignment)
    "shard-completed",     # {key, shard, depth, steps} (shard extended and
                           # its result merged back to the store)
)

_RESERVED = ("v", "ev", "t", "seq", "pid")

RECOVERY_EVENTS = {
    # trace event kind -> the PerfStats counter it must reconcile with
    "job-retried": "retries",
    "job-timeout": "timeouts",
    "worker-restart": "worker_restarts",
    "quarantine": "quarantined_shards",
}


def validate_event(record) -> Optional[str]:
    """``None`` if ``record`` is a schema-valid event, else what is wrong.

    Unknown *extra* fields are fine (the schema is open); unknown event
    kinds and missing or mistyped reserved fields are not.
    """
    if not isinstance(record, dict):
        return "event is not a JSON object"
    version = record.get("v")
    if not isinstance(version, int):
        return "missing or non-integer schema version 'v'"
    if version != SCHEMA_VERSION:
        return f"unknown schema version {version} (this reader knows {SCHEMA_VERSION})"
    kind = record.get("ev")
    if not isinstance(kind, str):
        return "missing event kind 'ev'"
    if kind not in EVENT_KINDS:
        return f"unknown event kind {kind!r}"
    if not isinstance(record.get("t"), (int, float)):
        return "missing or non-numeric timestamp 't'"
    if not isinstance(record.get("seq"), int):
        return "missing or non-integer sequence number 'seq'"
    if not isinstance(record.get("pid"), int):
        return "missing or non-integer 'pid'"
    if kind in ("span-start", "span-end"):
        if not isinstance(record.get("span"), str):
            return f"{kind} without a 'span' name"
        if not isinstance(record.get("sid"), int):
            return f"{kind} without a span id 'sid'"
    if kind == "span-end" and not isinstance(record.get("dur"), (int, float)):
        return "span-end without a numeric duration 'dur'"
    return None
