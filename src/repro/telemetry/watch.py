"""``repro trace watch``: tail a live trace and render convergence.

The watcher keeps one :class:`~repro.telemetry.analyze.TraceAccumulator`
fed from an incremental tail of the trace file.  Each refresh redraws a
compact dashboard: per-program anytime bounds (latest ``[lower, gap]`` per
depth, so you can see the bound converging while the run is still going)
plus batch job progress and recovery-event totals.

Partial final lines are the normal case on a live file -- the reader holds
the unterminated fragment back until its newline arrives, so a line is only
ever parsed (or counted as torn) once it is complete or the file is done
growing.
"""

from __future__ import annotations

import importlib.util
import sys
import time
from pathlib import Path
from typing import Optional, Union

from repro.telemetry.analyze import TraceAccumulator

__all__ = ["TraceTail", "render_watch", "render_bench_history", "watch"]


class TraceTail:
    """An incremental reader that survives a file that is still being written."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.accumulator = TraceAccumulator()
        self._offset = 0
        self._fragment = ""

    def poll(self) -> int:
        """Feed every newly completed line to the accumulator; count them."""
        try:
            with open(self.path, "r") as stream:
                stream.seek(self._offset)
                chunk = stream.read()
                self._offset = stream.tell()
        except OSError:
            return 0
        if not chunk:
            return 0
        text = self._fragment + chunk
        lines = text.split("\n")
        self._fragment = lines.pop()  # "" when the chunk ended on a newline
        fed = 0
        for line in lines:
            self.accumulator.feed_line(line, is_final=False, complete=True)
            fed += 1
        return fed

    def flush_fragment(self) -> None:
        """Account a trailing unterminated fragment (end of a dead trace)."""
        if self._fragment:
            self.accumulator.feed_line(self._fragment, is_final=True, complete=False)
            self._fragment = ""


def render_watch(accumulator: TraceAccumulator, path: Union[str, Path]) -> str:
    status = "finished" if accumulator.ended else "live"
    lines = [
        f"watching {path} [{status}] -- "
        f"{accumulator.events} events, t={accumulator.wall_seconds:.1f}s"
    ]
    if accumulator.anytime:
        lines.append("anytime bounds:")
        for program in sorted(accumulator.anytime):
            trajectory = accumulator.anytime[program]
            last = trajectory[-1]
            marker = "exhaustive" if last.get("exhaustive") else "converging"
            lines.append(
                f"  {program:<20s} depth {last.get('depth', '?'):>5}  "
                f"LB {last.get('lower', 0.0):.10f}  "
                f"gap <= {last.get('gap', 0.0):.3e}  [{marker}]"
            )
    total = accumulator.jobs_scheduled + accumulator.jobs_cached
    if total or accumulator.jobs_completed:
        done = accumulator.jobs_completed
        denominator = max(total, done, 1)
        width = 24
        filled = int(width * min(done, denominator) / denominator)
        bar = "#" * filled + "-" * (width - filled)
        lines.append(
            f"jobs: [{bar}] {done}/{denominator} "
            f"({accumulator.jobs_cached} cached, {accumulator.jobs_errored} errors)"
        )
    recovery_bits = [
        f"{count} {kind}" for kind, count in accumulator.recovery.items() if count
    ]
    if recovery_bits:
        lines.append("recovery: " + ", ".join(recovery_bits))
    if accumulator.corrupt_lines or accumulator.torn_tail:
        lines.append(
            f"damage: {accumulator.corrupt_lines} corrupt line(s)"
            + (", torn tail" if accumulator.torn_tail else "")
        )
    return "\n".join(lines)


def render_bench_history(bench_dir: Union[str, Path]) -> Optional[str]:
    """The committed ``BENCH_*.json`` trajectory table, or ``None``.

    Reuses :mod:`benchmarks.compare_bench`'s ``--history`` machinery by
    loading the script straight off disk (it is a repo script, not an
    installed module).  Returns ``None`` when the script or the baseline
    directory is absent, or the checkout has no baseline history -- the
    watcher then simply shows the live dashboard alone.
    """
    baseline_dir = Path(bench_dir)
    script = baseline_dir.parent / "compare_bench.py"
    if not script.is_file() or not baseline_dir.is_dir():
        return None
    try:
        spec = importlib.util.spec_from_file_location("_repro_compare_bench", script)
        if spec is None or spec.loader is None:
            return None
        module = importlib.util.module_from_spec(spec)
        # The script's @dataclass resolves its own module through
        # sys.modules, so it must be registered before executing.
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        rows = module.baseline_history(baseline_dir, limit=10)
        if not rows:
            return None
        return module.render_history(rows)
    except Exception:  # a broken script must never take the dashboard down
        return None


def watch(
    path: Union[str, Path],
    interval: float = 1.0,
    once: bool = False,
    stream=None,
    max_idle: Optional[float] = None,
    bench: Optional[str] = None,
) -> int:
    """Tail ``path`` until its trace ends (or forever); 0 on a clean exit.

    ``once`` renders a single snapshot of the current file state -- that is
    also what the tests drive.  ``max_idle`` stops after that many seconds
    without new events (safety valve for abandoned traces).  ``bench`` names
    a committed-baselines directory whose perf-trajectory history (the same
    table as ``compare_bench.py --history``) is appended below the live
    dashboard, so convergence and the perf record read side by side.
    """
    stream = stream if stream is not None else sys.stdout
    tail = TraceTail(path)
    if not tail.path.exists():
        print(f"trace watch: no such file: {path}", file=sys.stderr)
        return 1
    bench_panel = render_bench_history(bench) if bench else None
    if bench and bench_panel is None:
        print(f"trace watch: no bench history under {bench}", file=sys.stderr)

    def _frame() -> str:
        frame = render_watch(tail.accumulator, path)
        if bench_panel:
            frame += "\n\n" + bench_panel
        return frame

    idle_since = time.monotonic()
    while True:
        fed = tail.poll()
        if fed:
            idle_since = time.monotonic()
        if once or tail.accumulator.ended:
            tail.flush_fragment()
            print(_frame(), file=stream)
            return 0
        print(_frame(), file=stream)
        if max_idle is not None and time.monotonic() - idle_since > max_idle:
            print(f"trace watch: idle for {max_idle:.0f}s, giving up", file=stream)
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
