"""Structured telemetry: a versioned, append-only JSONL event stream.

Instrumentation sites import this package and call the module-level helpers
(:func:`emit`, :func:`span`, :func:`active`, ...); all of them reduce to a
single ``None`` check when no trace is armed, so telemetry is zero-cost when
off and can never perturb analysis results.

The reader side (``repro.telemetry.analyze``, ``repro.telemetry.watch``) is
imported lazily by the CLI -- this package root stays import-light because
every analysis module pulls it in.
"""

from repro.telemetry.events import (
    ENV_VAR,
    EVENT_KINDS,
    RECOVERY_EVENTS,
    SCHEMA_VERSION,
    WORKER_SUFFIX,
    validate_event,
)
from repro.telemetry.writer import (
    TelemetryWriter,
    active,
    emit,
    emit_counters,
    enabled,
    init_worker_from_env,
    merge_worker_traces,
    set_context,
    span,
    start,
    stop,
    worker_trace_path,
)

__all__ = [
    "ENV_VAR",
    "EVENT_KINDS",
    "RECOVERY_EVENTS",
    "SCHEMA_VERSION",
    "WORKER_SUFFIX",
    "TelemetryWriter",
    "active",
    "emit",
    "emit_counters",
    "enabled",
    "init_worker_from_env",
    "merge_worker_traces",
    "set_context",
    "span",
    "start",
    "stop",
    "validate_event",
    "worker_trace_path",
]
