"""The process-wide telemetry writer and its zero-cost-when-off front door.

One :class:`TelemetryWriter` per process owns one trace file.  The module
keeps the *current* writer in a single global; every instrumentation site in
the codebase goes through the module-level helpers (:func:`emit`,
:func:`active`, :func:`span`), which reduce to one ``None`` check when
tracing is off -- telemetry must never perturb results, so the off path
carries no locks, no clocks and no allocation.

Durability model: every event is serialized to one complete line and written
with an immediate flush, so a crashed (or SIGKILLed) process leaves at worst
one torn final line -- which every reader tolerates.  Nothing is ever
rewritten: the stream is append-only.

Worker processes do not share the supervisor's file (interleaved writes from
many processes could tear each other's lines).  Each worker opens its own
``<trace-path>.worker-<pid>`` side file -- pointed at by the
:data:`~repro.telemetry.events.ENV_VAR` environment variable -- and the
batch runner folds the side files into the main trace *deterministically*
(sorted by filename, line order preserved) once the pool is done, counting
any torn line instead of propagating it.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.telemetry.events import ENV_VAR, SCHEMA_VERSION, WORKER_SUFFIX

__all__ = [
    "TelemetryWriter",
    "active",
    "emit",
    "emit_counters",
    "enabled",
    "init_worker_from_env",
    "merge_worker_traces",
    "set_context",
    "span",
    "start",
    "stop",
]


class TelemetryWriter:
    """An append-only, crash-safe JSONL event writer for one process."""

    def __init__(
        self,
        path: Union[str, Path],
        command: Optional[str] = None,
        append: bool = False,
    ) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = open(self.path, "a" if append else "w")
        self._origin = time.monotonic()
        self._seq = 0
        self._next_span = 0
        self._open_spans = 0
        self._pid = os.getpid()
        self._context = {}
        self._closed = False
        self.emit("trace-start", schema=SCHEMA_VERSION, command=command)

    # -- the line pump ---------------------------------------------------------

    def emit(self, event: str, **fields) -> None:
        """Write one event line (reserved fields first, context merged in)."""
        if self._closed:
            return
        record = {
            "v": SCHEMA_VERSION,
            "ev": event,
            "t": round(time.monotonic() - self._origin, 6),
            "seq": self._seq,
            "pid": self._pid,
        }
        if self._context:
            record.update(self._context)
        for name, value in fields.items():
            if value is not None:
                record[name] = value
        self._seq += 1
        try:
            self._stream.write(json.dumps(record, sort_keys=False) + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            # A full disk (or a closed stream on interpreter teardown) must
            # never take the analysis down: tracing degrades, results don't.
            self._closed = True

    def append_raw(self, line: str) -> None:
        """Append an already-serialized event line (worker-file merges)."""
        if self._closed:
            return
        try:
            self._stream.write(line.rstrip("\n") + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            self._closed = True

    # -- spans -----------------------------------------------------------------

    def begin(self, span: str, **fields) -> Tuple[str, int, float]:
        """Open a span: emits ``span-start`` and returns the token for :meth:`end`."""
        sid = self._next_span
        self._next_span += 1
        self._open_spans += 1
        self.emit("span-start", span=span, sid=sid, **fields)
        return (span, sid, time.monotonic())

    def end(self, token: Tuple[str, int, float], **fields) -> None:
        """Close a span with its monotonic duration plus result attributes."""
        span, sid, started = token
        self._open_spans -= 1
        self.emit(
            "span-end",
            span=span,
            sid=sid,
            dur=round(time.monotonic() - started, 6),
            **fields,
        )

    @contextmanager
    def span(self, name: str, **fields):
        token = self.begin(name, **fields)
        try:
            yield
        finally:
            self.end(token)

    # -- context ---------------------------------------------------------------

    def set_context(self, **fields) -> None:
        """Merge ``fields`` into every subsequent event (``None`` removes)."""
        for name, value in fields.items():
            if value is None:
                self._context.pop(name, None)
            else:
                self._context[name] = value

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self.emit("trace-end", open_spans=self._open_spans)
        self._closed = True
        try:
            self._stream.close()
        except OSError:
            pass


# -- the process-wide front door ------------------------------------------------

_WRITER: Optional[TelemetryWriter] = None


def active() -> Optional[TelemetryWriter]:
    """The process's current writer, or ``None`` -- the one-check fast path.

    Hot code holds the returned writer in a local: one :func:`active` call
    per operation, zero everything when tracing is off.
    """
    return _WRITER


def enabled() -> bool:
    return _WRITER is not None


def start(
    path: Union[str, Path], command: Optional[str] = None, append: bool = False
) -> TelemetryWriter:
    """Open ``path`` as this process's trace (replacing any current writer)."""
    global _WRITER
    if _WRITER is not None:
        _WRITER.close()
    _WRITER = TelemetryWriter(path, command=command, append=append)
    return _WRITER


def stop() -> None:
    """Close and detach the current writer (idempotent)."""
    global _WRITER
    if _WRITER is not None:
        _WRITER.close()
        _WRITER = None


def emit(event: str, **fields) -> None:
    """Emit one event through the current writer; a no-op when tracing is off."""
    writer = _WRITER
    if writer is not None:
        writer.emit(event, **fields)


def emit_counters(stats) -> None:
    """Snapshot a :class:`~repro.geometry.stats.PerfStats` into the stream."""
    writer = _WRITER
    if writer is not None:
        writer.emit("counters", counters=stats.as_dict())


def set_context(**fields) -> None:
    """Set (or, with ``None``, clear) sticky event fields; no-op when off."""
    writer = _WRITER
    if writer is not None:
        writer.set_context(**fields)


@contextmanager
def span(name: str, **fields):
    """A span context manager that collapses to nothing when tracing is off."""
    writer = _WRITER
    if writer is None:
        yield
        return
    with writer.span(name, **fields):
        yield


# -- worker plumbing -------------------------------------------------------------


def worker_trace_path(base: Union[str, Path], pid: Optional[int] = None) -> Path:
    base = Path(base)
    pid = os.getpid() if pid is None else pid
    return base.with_name(base.name + f"{WORKER_SUFFIX}{pid}")


def init_worker_from_env() -> Optional[TelemetryWriter]:
    """Open this worker's side trace if the supervisor armed ``REPRO_TRACE``.

    Called from the pool initializer.  Append mode: a pool rebuilt after a
    crash can (rarely) hand a recycled pid a fresh worker, which must extend
    -- not clobber -- the earlier side file.
    """
    base = os.environ.get(ENV_VAR)
    if not base:
        return None
    try:
        return start(worker_trace_path(base), command="worker", append=True)
    except OSError:
        return None


def merge_worker_traces(base: Union[str, Path]) -> Tuple[int, int]:
    """Fold every ``<base>.worker-*`` side file into the main trace.

    Side files are consumed in sorted filename order with line order
    preserved, so the merged trace is deterministic for a given set of
    worker writes.  Only complete, parseable lines are copied; torn or
    corrupt lines are counted and surfaced as a ``warning`` event.  Each
    consumed file is recorded as a ``trace-merged`` event and removed.

    Returns ``(events merged, torn lines dropped)``.
    """
    base = Path(base)
    writer = _WRITER if _WRITER is not None and _WRITER.path == base else None
    merged_total = 0
    torn_total = 0
    sink = None
    try:
        for side in sorted(base.parent.glob(base.name + WORKER_SUFFIX + "*")):
            merged = 0
            torn = 0
            try:
                text = side.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    torn += 1
                    continue
                if not isinstance(record, dict):
                    torn += 1
                    continue
                if writer is not None:
                    writer.append_raw(line)
                else:
                    if sink is None:
                        sink = open(base, "a")
                    sink.write(line + "\n")
                merged += 1
            merged_total += merged
            torn_total += torn
            if writer is not None:
                writer.emit("trace-merged", source=side.name, events=merged, torn=torn)
            try:
                side.unlink()
            except OSError:
                pass
    finally:
        if sink is not None:
            sink.close()
    if torn_total and writer is not None:
        writer.emit(
            "warning",
            code="torn-worker-lines",
            count=torn_total,
            message="dropped torn lines while merging worker trace files",
        )
    return merged_total, torn_total
