"""Reading traces back: validation, accumulation, summaries, reconciliation.

The reader side of the telemetry stream is a single-pass accumulator
(:class:`TraceAccumulator`) shared by three consumers:

* ``python -m repro trace summarize`` -- per-phase wall time, hit rates,
  hottest programs, recovery-event totals (optionally cross-checked against
  a ``--stats-json`` dump);
* ``python -m repro trace watch`` -- feeds the same accumulator
  incrementally as a live trace grows;
* ``python -m repro doctor --trace`` -- schema validation, torn-line and
  span-balance findings.

Every reader tolerates a torn final line (the crash-safety contract of the
writer) by *counting* it; corrupt lines elsewhere in the file are real
damage and reported as such.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.events import RECOVERY_EVENTS, SCHEMA_VERSION, validate_event

__all__ = [
    "TraceAccumulator",
    "read_trace",
    "reconcile_counters",
    "render_summary",
]


@dataclass
class _SpanTotal:
    count: int = 0
    total_seconds: float = 0.0


@dataclass
class TraceAccumulator:
    """Everything one pass (or a growing tail) of a trace has established."""

    events: int = 0
    corrupt_lines: int = 0
    torn_tail: bool = False
    invalid_events: List[str] = field(default_factory=list)
    schema_versions: set = field(default_factory=set)
    event_counts: Dict[str, int] = field(default_factory=dict)
    command: Optional[str] = None
    root_pid: Optional[int] = None
    wall_seconds: float = 0.0
    """Largest ``t`` seen from the root (first-writing) process."""

    ended: bool = False
    """Whether the root process wrote its orderly ``trace-end``."""

    span_totals: Dict[str, _SpanTotal] = field(default_factory=dict)
    open_spans: Dict[Tuple[int, int], str] = field(default_factory=dict)
    unmatched_span_ends: int = 0
    counters: Optional[Dict[str, int]] = None
    """The most recent ``counters`` snapshot (the final one after a full read)."""

    program_ms: Dict[str, float] = field(default_factory=dict)
    anytime: Dict[str, List[dict]] = field(default_factory=dict)
    """Per program: the sequence of anytime-bound events, in arrival order."""

    jobs_scheduled: int = 0
    jobs_started: int = 0
    jobs_completed: int = 0
    jobs_cached: int = 0
    jobs_errored: int = 0
    recovery: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in RECOVERY_EVENTS}
    )
    warnings: List[dict] = field(default_factory=list)

    def feed_line(self, line: str, is_final: bool, complete: bool) -> None:
        """Account one raw line; ``complete`` means it ended with a newline."""
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
        except ValueError:
            record = None
        if not isinstance(record, dict):
            if is_final and not complete:
                self.torn_tail = True
            else:
                self.corrupt_lines += 1
            return
        problem = validate_event(record)
        if problem is not None:
            if isinstance(record.get("v"), int):
                self.schema_versions.add(record["v"])
            self.invalid_events.append(problem)
            return
        self.feed_event(record)

    def feed_event(self, record: dict) -> None:
        self.events += 1
        self.schema_versions.add(record["v"])
        kind = record["ev"]
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        pid = record["pid"]
        if self.root_pid is None:
            self.root_pid = pid
            if kind == "trace-start":
                self.command = record.get("command")
        if pid == self.root_pid:
            self.wall_seconds = max(self.wall_seconds, float(record["t"]))
            if kind == "trace-end":
                self.ended = True
        if kind == "span-start":
            self.open_spans[(pid, record["sid"])] = record["span"]
        elif kind == "span-end":
            if self.open_spans.pop((pid, record["sid"]), None) is None:
                self.unmatched_span_ends += 1
            total = self.span_totals.setdefault(record["span"], _SpanTotal())
            total.count += 1
            total.total_seconds += float(record["dur"])
        elif kind == "counters":
            counters = record.get("counters")
            if isinstance(counters, dict):
                self.counters = counters
        elif kind == "anytime-bound":
            program = record.get("program", "?")
            self.anytime.setdefault(program, []).append(record)
        elif kind == "job-scheduled":
            self.jobs_scheduled += 1
        elif kind == "job-started":
            self.jobs_started += 1
        elif kind == "job-completed":
            self.jobs_completed += 1
            if record.get("cached"):
                self.jobs_cached += 1
            if record.get("status") != "ok":
                self.jobs_errored += 1
            program = record.get("program")
            elapsed = record.get("elapsed_ms")
            if isinstance(program, str) and isinstance(elapsed, (int, float)):
                self.program_ms[program] = self.program_ms.get(program, 0.0) + elapsed
        elif kind == "warning":
            self.warnings.append(record)
        if kind in self.recovery:
            self.recovery[kind] += 1


def read_trace(path: Union[str, Path]) -> TraceAccumulator:
    """One full pass over a trace file (missing file => ``OSError``)."""
    accumulator = TraceAccumulator()
    text = Path(path).read_text()
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
        trailing_newline = True
    else:
        trailing_newline = False
    for position, line in enumerate(lines):
        is_final = position == len(lines) - 1
        accumulator.feed_line(line, is_final, complete=not is_final or trailing_newline)
    return accumulator


def reconcile_counters(
    accumulator: TraceAccumulator, counters: Dict[str, int]
) -> List[str]:
    """Mismatches between recovery-event totals and ``--stats-json`` counters.

    An empty list is the acceptance condition: every retry, timeout, worker
    restart and quarantine the supervisor counted must appear in the stream
    exactly as many times, and vice versa.
    """
    mismatches = []
    for event_kind, counter_name in RECOVERY_EVENTS.items():
        from_trace = accumulator.recovery.get(event_kind, 0)
        from_stats = counters.get(counter_name, 0)
        if from_trace != from_stats:
            mismatches.append(
                f"{event_kind} events: {from_trace} in the trace, but "
                f"counters[{counter_name!r}] = {from_stats}"
            )
    return mismatches


def _counter_labels() -> Dict[str, str]:
    # Deferred: analyze is imported by doctor, which lives below geometry.
    from repro.geometry.stats import PerfStats

    return PerfStats.field_labels()


def render_summary(
    accumulator: TraceAccumulator,
    path: Union[str, Path],
    stats_counters: Optional[Dict[str, int]] = None,
) -> Tuple[str, int]:
    """The ``trace summarize`` report and its exit code.

    Exit 1 on structural damage (corrupt non-final lines, unknown schema
    versions, invalid events) or a recovery-counter mismatch; a torn final
    line is reported but does not fail.
    """
    lines = [f"trace            : {path}"]
    problems = []
    versions = sorted(accumulator.schema_versions) or [SCHEMA_VERSION]
    lines.append(
        "schema           : "
        + ", ".join(str(version) for version in versions)
    )
    status_bits = [f"{accumulator.events} events"]
    if accumulator.corrupt_lines:
        status_bits.append(f"{accumulator.corrupt_lines} corrupt line(s)")
        problems.append(f"{accumulator.corrupt_lines} corrupt non-final line(s)")
    if accumulator.torn_tail:
        status_bits.append("torn final line")
    if accumulator.invalid_events:
        status_bits.append(f"{len(accumulator.invalid_events)} invalid event(s)")
        problems.append(
            f"{len(accumulator.invalid_events)} schema-invalid event(s): "
            + accumulator.invalid_events[0]
        )
    unknown = [v for v in accumulator.schema_versions if v != SCHEMA_VERSION]
    if unknown:
        problems.append(f"unknown schema version(s) {unknown}")
    lines.append("events           : " + ", ".join(status_bits))
    if accumulator.command:
        lines.append(f"command          : {accumulator.command}")
    lines.append(
        f"wall time        : {accumulator.wall_seconds:.3f} s "
        + ("(complete)" if accumulator.ended else "(no trace-end: still running, or died)")
    )

    if accumulator.span_totals:
        lines.append("phases:")
        for name in sorted(
            accumulator.span_totals,
            key=lambda n: -accumulator.span_totals[n].total_seconds,
        ):
            total = accumulator.span_totals[name]
            lines.append(
                f"  {name:<14s} : {total.count:6d} spans, "
                f"{total.total_seconds:8.3f} s total"
            )
        if accumulator.open_spans or accumulator.unmatched_span_ends:
            lines.append(
                f"  span balance   : {len(accumulator.open_spans)} never closed, "
                f"{accumulator.unmatched_span_ends} unmatched end(s)"
            )

    counters = accumulator.counters
    if counters:
        labels = _counter_labels()
        requests = counters.get("measure_requests", 0)
        hits = counters.get("cache_hits", 0)
        rate = (hits / requests * 100) if requests else 0.0
        lines.append("counters (final snapshot):")
        lines.append(
            f"  {labels.get('measure_requests', 'measure requests')} : {requests}"
        )
        lines.append(
            f"  {labels.get('cache_hits', 'cache hits')} : {hits} ({rate:.1f}%)"
        )
        for name in ("persistent_hits", "sweep_blocks", "sweep_warm_starts", "symbolic_steps"):
            if name in counters:
                lines.append(f"  {labels.get(name, name)} : {counters[name]}")

    if accumulator.jobs_scheduled or accumulator.jobs_completed:
        lines.append(
            f"jobs             : {accumulator.jobs_completed} completed "
            f"({accumulator.jobs_cached} cached, {accumulator.jobs_errored} errors), "
            f"{accumulator.jobs_scheduled} scheduled, "
            f"{accumulator.jobs_started} started in workers"
        )

    if accumulator.program_ms:
        lines.append("hottest programs :")
        hottest = sorted(accumulator.program_ms.items(), key=lambda item: -item[1])
        for program, elapsed in hottest[:5]:
            lines.append(f"  {program:<20s} {elapsed:9.1f} ms")

    if accumulator.anytime:
        lines.append("anytime bounds   :")
        for program in sorted(accumulator.anytime):
            trajectory = accumulator.anytime[program]
            last = trajectory[-1]
            lines.append(
                f"  {program:<20s} depth {last.get('depth', '?'):>5} : "
                f"LB {last.get('lower', 0.0):.10f}  "
                f"gap <= {last.get('gap', 0.0):.3e}  "
                f"({len(trajectory)} depth(s))"
            )

    recovery_bits = [
        f"{count} {kind}" for kind, count in accumulator.recovery.items() if count
    ]
    lines.append(
        "recovery events  : " + (", ".join(recovery_bits) if recovery_bits else "none")
    )
    if stats_counters is not None:
        mismatches = reconcile_counters(accumulator, stats_counters)
        if mismatches:
            for mismatch in mismatches:
                lines.append(f"MISMATCH         : {mismatch}")
            problems.append(f"{len(mismatches)} recovery counter mismatch(es)")
        else:
            lines.append("stats-json check : recovery events reconcile exactly")
    for warning in accumulator.warnings:
        code = warning.get("code", "warning")
        message = warning.get("message", "")
        lines.append(f"WARNING          : {code} {message}".rstrip())
    if accumulator.torn_tail:
        lines.append(
            "NOTE             : torn final line (a process died mid-write); "
            "tolerated by design"
        )
    lines.append("status           : " + ("PROBLEMS FOUND" if problems else "ok"))
    for problem in problems:
        lines.append(f"  problem        : {problem}")
    return "\n".join(lines), (1 if problems else 0)
