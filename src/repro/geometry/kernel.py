"""Vectorized interval evaluation of constraint sets over chunks of boxes.

The adaptive sweep (:mod:`repro.geometry.sweep`) classifies one box at a
time through scalar :class:`~repro.intervals.interval.Interval` objects --
object allocation and ``Fraction`` arithmetic per AST node per box.  This
module batches that hot loop: a constraint set is compiled *once* into a
flat instruction tape over the shared sub-expression DAG of its symbolic
values, and the tape is then evaluated over ``k`` boxes at a time as numpy
array operations on ``(k,)`` lower/upper endpoint vectors.

The kernel is strictly a *classifier*, never an accumulator, and its float
intervals are maintained as **outward-rounded enclosures** of the scalar
interval evaluation:

* exact endpoints (``Fraction`` box corners, constants) are converted with
  :func:`repro.intervals.interval.float_below` / ``float_above`` -- the
  conversion can only widen;
* every rounded arithmetic operation (``add``/``sub``/``mul``) takes one
  ``nextafter`` step outward, covering the half-ulp rounding of the float
  op (``neg``/``abs``/``min``/``max`` are exact in floats and not widened);
* transcendental extensions (``exp``/``log``/``sig``) are padded with
  :data:`_KERNEL_PAD`, *strictly larger* than the scalar extensions'
  ``_FLOAT_OUTWARD`` pad, plus a ``nextafter`` step -- so the kernel
  interval contains the scalar one even though numpy's ``exp`` and
  ``math.exp`` may disagree by an ulp;
* any lane whose evaluation leaves the scalar path's domain (``log`` of a
  possibly non-positive interval, ``exp`` overflow) is *poisoned* to NaN
  and therefore classified undecided.

Enclosure is what makes kernel verdicts sound drop-in replacements for the
exact :meth:`~repro.symbolic.constraints.Constraint.box_status`: with
``kernel_lo <= scalar_lo`` and ``kernel_hi >= scalar_hi``, a kernel-decided
``True``/``False`` implies the identical scalar verdict (e.g. for
``<= 0``: ``kernel_hi <= 0`` forces ``scalar_hi <= 0``), and every
undecided lane is re-checked by the sweep with the exact scalar
``box_status`` -- so the final verdict per (box, constraint) is always
*identical* to the scalar path's, including which evaluation raises.

``numpy`` is a hard install requirement of the package (it already was for
:mod:`repro.geometry.polytope`), but the import is guarded so that a
mis-provisioned environment degrades to the scalar sweep with a clear
error from :func:`require_numpy` instead of an ``ImportError`` at package
import time.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.intervals.interval import float_pair
from repro.symbolic.constraints import ConstraintSet, Relation
from repro.symbolic.values import ArgVal, ConstVal, PrimVal, SampleVar, SymVal

try:  # pragma: no cover - exercised only on broken installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "CompiledSet",
    "KERNEL_FALSE",
    "KERNEL_TRUE",
    "KERNEL_UNDECIDED",
    "KERNEL_UNDECIDED_SURE",
    "boxes_to_arrays",
    "compile_constraint_set",
    "kernel_available",
    "require_numpy",
]

# Verdict codes of :meth:`CompiledSet.classify`.  Undecided is the zero so a
# freshly allocated verdict vector is already conservative.
KERNEL_UNDECIDED = 0
KERNEL_TRUE = 1
KERNEL_FALSE = 2
KERNEL_UNDECIDED_SURE = 3
"""Certified-undecided: the *inner* enclosure already straddles the decision
boundary, so the scalar ``box_status`` provably returns ``None`` -- the
sweep can record the constraint undecided without the scalar re-check."""

_KERNEL_PAD = 4e-12
"""Relative+absolute pad of the transcendental kernels.

Strictly larger than ``repro.spcf.primitives._FLOAT_OUTWARD`` (1e-12): the
extra 3e-12 margin dominates any ulp-level disagreement between numpy's and
``math``'s transcendentals, keeping the kernel interval an enclosure of the
scalar one.
"""

_EXP_OVERFLOW = 709.0
"""Inputs above this make ``math.exp`` raise; such lanes are poisoned so the
sweep re-evaluates them on the scalar path, which raises identically."""


def kernel_available() -> bool:
    """Whether the numpy-backed kernel can run in this environment."""
    return _np is not None


def require_numpy():
    """Return numpy or fail with an actionable message.

    numpy is an install requirement (``setup.py``); this guard exists so a
    broken environment produces one clear error instead of a bare
    ``ImportError`` deep inside the sweep.
    """
    if _np is None:
        raise RuntimeError(
            "the vectorized sweep kernel requires numpy, which is a declared "
            "install requirement of this package (pip install numpy); pass "
            "--no-sweep-kernel / MeasureOptions(sweep_kernel=False) to use "
            "the scalar sweep without it"
        )
    return _np


class _Unsupported(Exception):
    """Raised during compilation when a value form has no vectorized kernel."""


class CompiledSet:
    """A constraint set compiled to a flat interval-arithmetic tape.

    The tape is a list of register-machine instructions over ``(k,)`` float
    endpoint vectors; common sub-expressions across all constraints of the
    set share registers (symbolic execution reuses value nodes heavily, so
    the tape is a DAG traversal, not a tree one).  Compilation is
    independent of the boxes: one compiled set classifies every chunk of
    every sweep of that set.
    """

    __slots__ = ("tape", "register_count", "outputs", "uses_argument")

    def __init__(self, tape, register_count, outputs, uses_argument):
        self.tape = tape
        self.register_count = register_count
        self.outputs = outputs
        """One ``(register, Relation)`` per constraint, in set order."""
        self.uses_argument = uses_argument

    def classify(
        self,
        los,
        his,
        inner_los,
        inner_his,
        argument_pairs: Optional[Tuple[Tuple[float, float], Tuple[float, float]]] = None,
    ) -> List:
        """Verdict vectors for every constraint over a chunk of boxes.

        ``los``/``his`` are ``(k, d)`` arrays of outward-rounded box
        endpoints, ``inner_los``/``inner_his`` their inward-rounded twins
        (:func:`boxes_to_arrays`).  Returns one ``(k,)`` uint8 vector per
        constraint with values :data:`KERNEL_TRUE` / :data:`KERNEL_FALSE` /
        :data:`KERNEL_UNDECIDED` / :data:`KERNEL_UNDECIDED_SURE`;
        NaN-poisoned lanes are always plain-undecided, so the caller
        re-checks them exactly.

        The tape maintains *two* interval banks per register:

        * the **outer** bank encloses the scalar interval from outside
          (outward rounding), so its ``True``/``False`` verdicts imply the
          scalar ones;
        * the **inner** bank is certified to lie *inside* the scalar
          interval (inward rounding; ``fl`` is monotone, so evaluating the
          same float ops on inner operands plus one ``nextafter`` step
          inward stays inside whatever the scalar path computes, whether it
          computed in exact ``Fraction`` or in rounded float arithmetic).
          When the inner interval already straddles the constraint's
          decision boundary, ``box_status`` provably returns ``None`` and
          the lane is classified :data:`KERNEL_UNDECIDED_SURE`.

        Inner endpoints may legitimately invert (``lo > hi``) when the
        scalar interval is only ulps wide; pointwise-monotone ops tolerate
        that, but ``mul``/``abs`` -- whose inner soundness argument needs
        both endpoints inside the scalar interval -- invalidate inverted
        lanes for certification (outer verdicts are unaffected).  Lanes the
        outer bank poisoned (``log`` domain, ``exp`` overflow) are never
        certified, so the scalar re-check still raises where the scalar
        sweep would.
        """
        np = _np
        k, dimension = los.shape
        count = self.register_count
        reg_lo: List = [None] * count
        reg_hi: List = [None] * count
        inn_lo: List = [None] * count
        inn_hi: List = [None] * count
        invalid = np.zeros(k, dtype=bool)
        with np.errstate(all="ignore"):
            for instruction in self.tape:
                op = instruction[0]
                if op == "box":
                    _, dst, index = instruction
                    if index < dimension:
                        reg_lo[dst] = los[:, index]
                        reg_hi[dst] = his[:, index]
                        inn_lo[dst] = inner_los[:, index]
                        inn_hi[dst] = inner_his[:, index]
                    else:
                        # An unconstrained sample variable reads as the unit
                        # interval, mirroring ``SampleVar.interval_evaluate``.
                        reg_lo[dst] = inn_lo[dst] = np.zeros(k)
                        reg_hi[dst] = inn_hi[dst] = np.ones(k)
                elif op == "const":
                    _, dst, lo, hi, ilo, ihi = instruction
                    reg_lo[dst] = np.full(k, lo)
                    reg_hi[dst] = np.full(k, hi)
                    inn_lo[dst] = np.full(k, ilo)
                    inn_hi[dst] = np.full(k, ihi)
                elif op == "arg":
                    (_, dst) = instruction
                    (lo, hi), (ilo, ihi) = argument_pairs
                    reg_lo[dst] = np.full(k, lo)
                    reg_hi[dst] = np.full(k, hi)
                    inn_lo[dst] = np.full(k, ilo)
                    inn_hi[dst] = np.full(k, ihi)
                elif op == "add":
                    _, dst, a, b = instruction
                    reg_lo[dst] = np.nextafter(reg_lo[a] + reg_lo[b], -np.inf)
                    reg_hi[dst] = np.nextafter(reg_hi[a] + reg_hi[b], np.inf)
                    inn_lo[dst] = np.nextafter(inn_lo[a] + inn_lo[b], np.inf)
                    inn_hi[dst] = np.nextafter(inn_hi[a] + inn_hi[b], -np.inf)
                elif op == "sub":
                    _, dst, a, b = instruction
                    reg_lo[dst] = np.nextafter(reg_lo[a] - reg_hi[b], -np.inf)
                    reg_hi[dst] = np.nextafter(reg_hi[a] - reg_lo[b], np.inf)
                    inn_lo[dst] = np.nextafter(inn_lo[a] - inn_hi[b], np.inf)
                    inn_hi[dst] = np.nextafter(inn_hi[a] - inn_lo[b], -np.inf)
                elif op == "mul":
                    _, dst, a, b = instruction
                    p1 = reg_lo[a] * reg_lo[b]
                    p2 = reg_lo[a] * reg_hi[b]
                    p3 = reg_hi[a] * reg_lo[b]
                    p4 = reg_hi[a] * reg_hi[b]
                    lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
                    hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
                    reg_lo[dst] = np.nextafter(lo, -np.inf)
                    reg_hi[dst] = np.nextafter(hi, np.inf)
                    # The inner product argument needs both operand intervals
                    # inside their scalar intervals *as intervals*: inverted
                    # lanes lose certification (never outer verdicts).
                    invalid |= (inn_lo[a] > inn_hi[a]) | (inn_lo[b] > inn_hi[b])
                    p1 = inn_lo[a] * inn_lo[b]
                    p2 = inn_lo[a] * inn_hi[b]
                    p3 = inn_hi[a] * inn_lo[b]
                    p4 = inn_hi[a] * inn_hi[b]
                    lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
                    hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
                    inn_lo[dst] = np.nextafter(lo, np.inf)
                    inn_hi[dst] = np.nextafter(hi, -np.inf)
                elif op == "neg":
                    _, dst, a = instruction
                    reg_lo[dst] = -reg_hi[a]
                    reg_hi[dst] = -reg_lo[a]
                    inn_lo[dst] = -inn_hi[a]
                    inn_hi[dst] = -inn_lo[a]
                elif op == "abs":
                    _, dst, a = instruction
                    lo_a, hi_a = reg_lo[a], reg_hi[a]
                    lo = np.where(
                        lo_a >= 0.0, lo_a, np.where(hi_a <= 0.0, -hi_a, 0.0)
                    )
                    # NaN lanes: ``maximum`` propagates the NaN into ``hi``,
                    # and the poison mask below keeps the lane undecided.
                    reg_lo[dst] = lo
                    reg_hi[dst] = np.maximum(-lo_a, hi_a)
                    invalid |= inn_lo[a] > inn_hi[a]
                    lo_a, hi_a = inn_lo[a], inn_hi[a]
                    inn_lo[dst] = np.where(
                        lo_a >= 0.0, lo_a, np.where(hi_a <= 0.0, -hi_a, 0.0)
                    )
                    inn_hi[dst] = np.maximum(-lo_a, hi_a)
                elif op == "min":
                    _, dst, a, b = instruction
                    reg_lo[dst] = np.minimum(reg_lo[a], reg_lo[b])
                    reg_hi[dst] = np.minimum(reg_hi[a], reg_hi[b])
                    inn_lo[dst] = np.minimum(inn_lo[a], inn_lo[b])
                    inn_hi[dst] = np.minimum(inn_hi[a], inn_hi[b])
                elif op == "max":
                    _, dst, a, b = instruction
                    reg_lo[dst] = np.maximum(reg_lo[a], reg_lo[b])
                    reg_hi[dst] = np.maximum(reg_hi[a], reg_hi[b])
                    inn_lo[dst] = np.maximum(inn_lo[a], inn_lo[b])
                    inn_hi[dst] = np.maximum(inn_hi[a], inn_hi[b])
                elif op == "exp":
                    _, dst, a = instruction
                    lo = np.exp(reg_lo[a])
                    hi = np.exp(reg_hi[a])
                    lo, hi = _pad_outward(np, lo, hi)
                    lo = np.maximum(lo, 0.0)
                    # math.exp raises OverflowError where numpy saturates to
                    # inf: poison those lanes so the scalar re-check raises
                    # at the identical (box, constraint).
                    overflow = reg_hi[a] > _EXP_OVERFLOW
                    if overflow.any():
                        lo = np.where(overflow, np.nan, lo)
                        hi = np.where(overflow, np.nan, hi)
                    reg_lo[dst] = lo
                    reg_hi[dst] = hi
                    # Inner transcendentals carry no pad at all: the scalar
                    # extension's outward pad dwarfs any numpy-vs-math ulp
                    # disagreement, so the unpadded value is strictly inside.
                    inn_lo[dst] = np.maximum(
                        np.nextafter(np.exp(inn_lo[a]), np.inf), 0.0
                    )
                    inn_hi[dst] = np.nextafter(np.exp(inn_hi[a]), -np.inf)
                elif op == "sig":
                    _, dst, a = instruction
                    reg_lo[dst] = np.maximum(
                        _pad_down(np, _sigmoid(np, reg_lo[a])), 0.0
                    )
                    reg_hi[dst] = np.minimum(
                        _pad_up(np, _sigmoid(np, reg_hi[a])), 1.0
                    )
                    inn_lo[dst] = np.maximum(
                        np.nextafter(_sigmoid(np, inn_lo[a]), np.inf), 0.0
                    )
                    inn_hi[dst] = np.minimum(
                        np.nextafter(_sigmoid(np, inn_hi[a]), -np.inf), 1.0
                    )
                elif op == "log":
                    _, dst, a = instruction
                    lo_a = reg_lo[a]
                    lo = _pad_down(np, np.log(lo_a))
                    hi = _pad_up(np, np.log(reg_hi[a]))
                    # The scalar extension raises unless the lower bound is
                    # strictly positive; poisoned lanes fall back to it (and
                    # are never certified, so the re-check raises).
                    bad = ~(lo_a > 0.0)
                    if bad.any():
                        lo = np.where(bad, np.nan, lo)
                        hi = np.where(bad, np.nan, hi)
                    reg_lo[dst] = lo
                    reg_hi[dst] = hi
                    inn_lo[dst] = np.nextafter(np.log(inn_lo[a]), np.inf)
                    inn_hi[dst] = np.nextafter(np.log(inn_hi[a]), -np.inf)
                else:  # pragma: no cover - compilation only emits the above
                    raise AssertionError(f"unknown kernel opcode {op!r}")

            verdicts = []
            for register, relation in self.outputs:
                lo, hi = reg_lo[register], reg_hi[register]
                ilo, ihi = inn_lo[register], inn_hi[register]
                # ``sure``: the inner interval certifies the *scalar* verdict
                # is ``None``.  NaN inner endpoints fail the comparisons and
                # inverted inner outputs cannot satisfy lo-side and hi-side
                # at once, so both degrade to a plain undecided lane.
                if relation is Relation.LE:
                    true_mask, false_mask = hi <= 0.0, lo > 0.0
                    sure_mask = (ilo <= 0.0) & (ihi > 0.0)
                elif relation is Relation.GT:
                    true_mask, false_mask = lo > 0.0, hi <= 0.0
                    sure_mask = (ilo <= 0.0) & (ihi > 0.0)
                elif relation is Relation.GE:
                    true_mask, false_mask = lo >= 0.0, hi < 0.0
                    sure_mask = (ilo < 0.0) & (ihi >= 0.0)
                else:  # Relation.LT
                    true_mask, false_mask = hi < 0.0, lo >= 0.0
                    sure_mask = (ilo < 0.0) & (ihi >= 0.0)
                sound = ~(np.isnan(lo) | np.isnan(hi))
                verdict = np.zeros(k, dtype=np.uint8)
                verdict[sure_mask & sound & ~invalid] = KERNEL_UNDECIDED_SURE
                verdict[true_mask & sound] = KERNEL_TRUE
                verdict[false_mask & sound] = KERNEL_FALSE
                verdicts.append(verdict)
        return verdicts


def _pad_outward(np, lo, hi):
    return _pad_down(np, lo), _pad_up(np, hi)


def _pad_down(np, lo):
    return np.nextafter(lo - (np.abs(lo) * _KERNEL_PAD + _KERNEL_PAD), -np.inf)


def _pad_up(np, hi):
    return np.nextafter(hi + (np.abs(hi) * _KERNEL_PAD + _KERNEL_PAD), np.inf)


def _sigmoid(np, x):
    """The numerically stable two-branch logistic, vectorized.

    Mirrors ``repro.spcf.primitives._sig``: neither branch's ``exp`` can
    overflow on the lanes it is selected for, and NaN inputs propagate.
    """
    negative = np.minimum(x, 0.0)
    positive = np.maximum(x, 0.0)
    exp_neg = np.exp(negative)
    return np.where(x >= 0.0, 1.0 / (1.0 + np.exp(-positive)), exp_neg / (1.0 + exp_neg))


_SUPPORTED_PRIMS = {
    "add": 2,
    "sub": 2,
    "mul": 2,
    "neg": 1,
    "abs": 1,
    "min": 2,
    "max": 2,
    "exp": 1,
    "log": 1,
    "sig": 1,
}


def compile_constraint_set(constraints: ConstraintSet) -> Optional[CompiledSet]:
    """Compile a constraint set to a :class:`CompiledSet`, or ``None``.

    ``None`` means *unsupported* -- a primitive outside the vectorized
    table, a ``star`` unknown, or a missing numpy -- and the sweep falls
    back to the scalar path for the whole set.  Compilation walks each
    value tree iteratively (symbolic execution builds values thousands of
    nodes deep) and memoizes on node identity, so shared sub-expressions
    within and across constraints evaluate once per chunk.
    """
    if _np is None:
        return None
    tape: List[tuple] = []
    registers: dict = {}
    uses_argument = False

    def compile_value(root: SymVal) -> int:
        nonlocal uses_argument
        work: List[Tuple[str, SymVal]] = [("visit", root)]
        while work:
            tag, value = work.pop()
            if id(value) in registers:
                continue
            if tag == "emit":
                if isinstance(value, PrimVal):
                    sources = tuple(registers[id(arg)] for arg in value.args)
                    dst = len(tape)
                    registers[id(value)] = dst
                    tape.append((value.op, dst) + sources)
                continue
            if isinstance(value, PrimVal):
                arity = _SUPPORTED_PRIMS.get(value.op)
                if arity is None or arity != len(value.args):
                    raise _Unsupported(value.op)
                work.append(("emit", value))
                for arg in reversed(value.args):
                    work.append(("visit", arg))
            elif isinstance(value, SampleVar):
                dst = len(tape)
                registers[id(value)] = dst
                tape.append(("box", dst, value.index))
            elif isinstance(value, ConstVal):
                dst = len(tape)
                registers[id(value)] = dst
                below, above = float_pair(value.value)
                # Outer endpoints round outward, inner ones inward (for an
                # exactly representable constant all four coincide).
                tape.append(("const", dst, below, above, above, below))
            elif isinstance(value, ArgVal):
                uses_argument = True
                dst = len(tape)
                registers[id(value)] = dst
                tape.append(("arg", dst))
            else:  # StarVal and any future value form
                raise _Unsupported(type(value).__name__)
        return registers[id(root)]

    outputs = []
    try:
        for constraint in constraints.constraints:
            outputs.append((compile_value(constraint.value), constraint.relation))
    except _Unsupported:
        return None
    return CompiledSet(tuple(tape), len(tape), tuple(outputs), uses_argument)


def rows_to_arrays(low_rows, high_rows):
    """Array banks from precomputed exact-float endpoint rows.

    The sweep's kernel loop maintains one ``(lo_row, hi_row)`` pair of float
    lists per heap entry in the pure-bisection regime, deriving children's
    rows from the parent's by float arithmetic (exact for dyadic endpoints
    up to depth 52, see :func:`boxes_to_arrays`).  Outer and inner banks
    coincide, so the chunk arrays are two ``np.array`` calls with no
    per-endpoint ``float(Fraction)`` conversion at all.
    """
    los = _np.array(low_rows)
    his = _np.array(high_rows)
    return los, his, los, his


def boxes_to_arrays(boxes, exact: bool = False):
    """Outward- and inward-rounded ``(k, d)`` endpoint arrays for a chunk.

    Returns ``(los, his, inner_los, inner_his)``.  The outer pair rounds
    each exact box outward (never inward), keeping every float box an
    enclosure of the exact one -- the kernel's verdict soundness rests on
    that; the inner pair rounds inward for the certified-undecided test.

    ``exact=True`` asserts that every endpoint converts to float exactly --
    the sweep passes it in the pure-bisection regime with ``max_depth <=
    52``, where every endpoint is a dyadic rational ``k / 2**e`` with
    ``e <= 52``, so ``float()`` is exact, outer and inner coincide, and the
    per-endpoint rounding analysis of
    :func:`repro.intervals.interval.float_pair` can be skipped wholesale.
    """
    np = _np
    if exact:
        los = np.array(
            [[float(interval.lo) for interval in box.intervals] for box in boxes]
        )
        his = np.array(
            [[float(interval.hi) for interval in box.intervals] for box in boxes]
        )
        return los, his, los, his
    k = len(boxes)
    dimension = boxes[0].dimension
    los = np.empty((k, dimension))
    his = np.empty((k, dimension))
    inner_los = np.empty((k, dimension))
    inner_his = np.empty((k, dimension))
    for row, box in enumerate(boxes):
        for column, interval in enumerate(box.intervals):
            below, above = float_pair(interval.lo)
            los[row, column] = below
            inner_los[row, column] = above
            below, above = float_pair(interval.hi)
            his[row, column] = above
            inner_his[row, column] = below
    return los, his, inner_los, inner_his
