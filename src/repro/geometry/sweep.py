"""Certified measures by adaptive interval subdivision (the paper's sweep).

Section 7.1 describes the lower-bound prototype as "a simple sweep algorithm
to search for terminating interval traces by splitting the unit box".  This
module implements that sweep over an arbitrary constraint set: the unit box
is bisected, boxes on which interval evaluation *proves* all constraints are
added to the lower bound, boxes that provably violate some constraint are
discarded, and undecided boxes are refined until a budget is exhausted.  The
result is a pair of certified bounds

    lower  <=  Lebesgue measure of the solution set  <=  lower + undecided

valid for any constraint set built from interval-preserving primitives,
including the non-linear ones (``sig``, ``exp``) for which the polytope
oracle does not apply.

Refinement is *prioritized*: undecided boxes live on a max-heap ordered by
volume, so the split that can shrink the undecided gap the most always
happens first (each bisection is along the box's widest dimension, exactly
the split the old fixed-depth recursion performed).  The completeness
argument of Thm. 3.8 only needs the undecided volume to shrink -- it does
not mandate uniform-depth round-robin splitting -- which frees the budget
knobs:

* ``max_depth`` bounds the number of bisections along any branch (the
  classic knob; with only this set, the adaptive sweep examines exactly the
  boxes of the old depth-first sweep and returns bit-identical bounds --
  exact rational sums are order-independent),
* ``target_gap`` stops refining as soon as the total undecided volume drops
  to the target, so easy sets stop after a handful of boxes instead of
  exhausting the depth budget,
* ``max_boxes`` caps the number of boxes examined outright.

The subdivision is also branch-and-bound pruned: a constraint proven
``True`` on a box stays true on every sub-box (interval evaluation is
inclusion-monotone), so children only re-evaluate the constraints their
parent could not decide.  The pruning changes no verdicts -- a box's status
over the remaining constraints equals its status over the full set -- it
only skips redundant ``box_status`` evaluations, which are reported through
:class:`~repro.geometry.stats.PerfStats` and on :class:`SweepResult`.

:func:`sweep_measure` and :func:`sweep_accepted_boxes` share one traversal
core (:func:`_sweep`), so the accepted boxes witnessing a lower bound (the
raw material of the intersection type system's inference oracle, Sec. 4)
can never drift from the bound itself.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.geometry.stats import PerfStats
from repro.intervals.box import Box, unit_box
from repro.intervals.interval import Interval
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SweepResult:
    """Certified bounds produced by the subdivision sweep."""

    lower: Number
    undecided: Number
    boxes_examined: int
    evaluations_saved: int = 0
    """Per-constraint box evaluations skipped by branch-and-bound pruning."""

    early_exit: bool = False
    """Whether a ``target_gap`` / ``max_boxes`` budget stopped the sweep."""

    heap_peak: int = 0
    """Largest refinement frontier held during the sweep."""

    @property
    def upper(self) -> Number:
        """A certified upper bound on the measure."""
        return self.lower + self.undecided


def _undecided_constraints(
    active: Tuple[Constraint, ...],
    mapping: Dict[int, Interval],
    registry: PrimitiveRegistry,
    argument: Optional[Interval],
) -> Optional[Tuple[Constraint, ...]]:
    """Evaluate the active constraints on a box.

    Returns ``None`` when some constraint provably fails, and otherwise the
    tuple of constraints the box could not decide (empty means all proven).
    """
    undecided = []
    for constraint in active:
        status = constraint.box_status(mapping, registry, argument)
        if status is False:
            return None
        if status is None:
            undecided.append(constraint)
    return tuple(undecided)


def _sweep(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int,
    registry: Optional[PrimitiveRegistry],
    argument: Optional[Interval],
    stats: Optional[PerfStats],
    target_gap: Number,
    max_boxes: Optional[int],
    accepted: Optional[List[Box]],
) -> SweepResult:
    """The shared traversal behind :func:`sweep_measure` and
    :func:`sweep_accepted_boxes`.

    When ``accepted`` is a list, every box on which all constraints provably
    hold is appended to it; the accepted volumes always sum to the returned
    lower bound, whatever budget stopped the sweep.
    """
    registry = registry or default_registry()
    if dimension == 0:
        satisfied = constraints.satisfied_by({}, registry)
        if satisfied and accepted is not None:
            accepted.append(unit_box(0))
        value = Fraction(1) if satisfied else Fraction(0)
        if stats is not None:
            stats.sweep_boxes_examined += 1
        return SweepResult(value, Fraction(0), 1)

    lower: Number = Fraction(0)
    undecided: Number = Fraction(0)
    examined = 0
    saved = 0
    total_constraints = len(constraints)

    # Max-heap on box volume (heapq is a min-heap, so volumes are negated);
    # the push counter breaks volume ties deterministically in insertion
    # order.  ``pending`` tracks the total volume still on the frontier, so
    # the gap test below is O(1).
    heap = [(Fraction(-1), 0, unit_box(dimension), 0, constraints.constraints)]
    pending: Number = Fraction(1)
    pushes = 1
    heap_peak = 1
    early_exit = False
    while heap:
        if (max_boxes is not None and examined >= max_boxes) or (
            target_gap > 0 and undecided + pending <= target_gap
        ):
            # Budget reached: everything still on the frontier is undecided.
            early_exit = True
            for negated_volume, _, _, _, _ in heap:
                undecided = undecided - negated_volume
            break
        negated_volume, _, box, depth, active = heapq.heappop(heap)
        volume = -negated_volume
        pending = pending - volume
        examined += 1
        saved += total_constraints - len(active)
        mapping: Dict[int, Interval] = {
            index: interval for index, interval in enumerate(box.intervals)
        }
        remaining = _undecided_constraints(active, mapping, registry, argument)
        if remaining is None:
            continue
        if not remaining:
            lower = lower + volume
            if accepted is not None:
                accepted.append(box)
            continue
        if depth >= max_depth:
            undecided = undecided + volume
            continue
        for child in box.split():
            heapq.heappush(heap, (-child.volume, pushes, child, depth + 1, remaining))
            pushes += 1
        pending = pending + volume
        if len(heap) > heap_peak:
            heap_peak = len(heap)
    if stats is not None:
        stats.sweep_boxes_examined += examined
        stats.sweep_evaluations_saved += saved
        if early_exit:
            stats.sweep_early_exits += 1
        if heap_peak > stats.sweep_heap_peak:
            stats.sweep_heap_peak = heap_peak
    return SweepResult(lower, undecided, examined, saved, early_exit, heap_peak)


def sweep_accepted_boxes(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
) -> List[Box]:
    """The sweep's accepted boxes: pairwise almost-disjoint sub-boxes of the
    unit cube on which every constraint provably holds.

    The boxes witness the lower bound of :func:`sweep_measure` (their volumes
    sum to it) and are the raw material of the interval traces used by the
    intersection type system's inference oracle (Sec. 4).
    """
    accepted: List[Box] = []
    _sweep(
        constraints,
        dimension,
        max_depth,
        registry,
        argument,
        stats=None,
        target_gap=Fraction(0),
        max_boxes=None,
        accepted=accepted,
    )
    return accepted


def sweep_measure(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
    stats: Optional[PerfStats] = None,
    target_gap: Number = Fraction(0),
    max_boxes: Optional[int] = None,
) -> SweepResult:
    """Certified lower/upper bounds on the measure of ``constraints`` in
    ``[0,1]^dim``.

    ``max_depth`` bounds the number of bisections along any branch of the
    subdivision tree; the undecided volume shrinks (for interval-separable
    constraints) as the depth grows, mirroring the completeness argument of
    Thm. 3.8.  ``target_gap`` and ``max_boxes`` are optional early-exit
    budgets (see the module docstring); with both unset the result is
    bit-identical to the historical fixed-depth depth-first sweep.
    """
    return _sweep(
        constraints,
        dimension,
        max_depth,
        registry,
        argument,
        stats,
        target_gap,
        max_boxes,
        accepted=None,
    )
