"""Certified measures by adaptive interval subdivision (the paper's sweep).

Section 7.1 describes the lower-bound prototype as "a simple sweep algorithm
to search for terminating interval traces by splitting the unit box".  This
module implements that sweep over an arbitrary constraint set: the unit box
is bisected, boxes on which interval evaluation *proves* all constraints are
added to the lower bound, boxes that provably violate some constraint are
discarded, and undecided boxes are refined until a budget is exhausted.  The
result is a pair of certified bounds

    lower  <=  Lebesgue measure of the solution set  <=  lower + undecided

valid for any constraint set built from interval-preserving primitives,
including the non-linear ones (``sig``, ``exp``) for which the polytope
oracle does not apply.

Refinement is *prioritized*: undecided boxes live on a max-heap ordered by
volume, so the split that can shrink the undecided gap the most always
happens first (each bisection is along the box's widest dimension, exactly
the split the old fixed-depth recursion performed).  The completeness
argument of Thm. 3.8 only needs the undecided volume to shrink -- it does
not mandate uniform-depth round-robin splitting -- which frees the budget
knobs:

* ``max_depth`` bounds the number of bisections along any branch (the
  classic knob; with only this set, the adaptive sweep examines exactly the
  boxes of the old depth-first sweep and returns bit-identical bounds --
  exact rational sums are order-independent),
* ``target_gap`` stops refining as soon as the total undecided volume drops
  to the target, so easy sets stop after a handful of boxes instead of
  exhausting the depth budget,
* ``max_boxes`` caps the number of boxes examined outright.

The subdivision is also branch-and-bound pruned: a constraint proven
``True`` on a box stays true on every sub-box (interval evaluation is
inclusion-monotone), so children only re-evaluate the constraints their
parent could not decide.  The pruning changes no verdicts -- a box's status
over the remaining constraints equals its status over the full set -- it
only skips redundant ``box_status`` evaluations, which are reported through
:class:`~repro.geometry.stats.PerfStats` and on :class:`SweepResult`.

:func:`sweep_measure` and :func:`sweep_accepted_boxes` share one traversal
core (:func:`_sweep`), so the accepted boxes witnessing a lower bound (the
raw material of the intersection type system's inference oracle, Sec. 4)
can never drift from the bound itself.

Depth-budgeted sweeps are *resumable*: with ``collect_frontier=True`` the
result carries a :class:`SweepFrontier` -- the undecided boxes the depth
budget stranded, each with its depth and the indices of the constraints it
could not decide -- and a deeper sweep can ``resume`` from that frontier
instead of re-bisecting everything the shallower budget already decided.
Because a box's verdict depends only on the box and its constraints, the
resumed sweep's bounds and work counters (``boxes_examined``,
``evaluations_saved``) are bit-identical to a from-scratch sweep at the
deeper budget; only ``heap_peak``, a diagnostic high-water mark of a
traversal order the resumed sweep never performs, is reported as the
maximum of the two runs' peaks.  Frontiers are only collected (and only
usable) for pure depth budgets -- an early-exited sweep's frontier would
not determine the deeper result.  :func:`encode_frontier` /
:func:`decode_frontier` give frontiers an exact JSON form so the batch
cache can persist them next to the sweep bounds, letting warm reruns
resume across processes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.geometry.stats import PerfStats
from repro.intervals.box import Box, unit_box
from repro.intervals.interval import Interval
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SweepFrontier:
    """The resumable state of a depth-budgeted sweep.

    Everything a deeper sweep needs to continue where a shallower budget
    stopped: the boxes the budget left undecided (each with its subdivision
    depth and the *indices* -- into the swept set's canonical constraint
    tuple -- of the constraints it could not decide), plus the accepted mass
    and work counters accumulated so far, so the resumed result reports
    cumulative numbers identical to a from-scratch run.  Constraint indices
    rather than constraints keep the frontier position-independent and
    JSON-serializable (:func:`encode_frontier`).
    """

    max_depth: int
    """The depth budget this frontier was stranded at."""

    lower: Number
    """Accepted mass up to ``max_depth`` (the shallow sweep's lower bound)."""

    boxes_examined: int
    evaluations_saved: int
    heap_peak: int
    boxes: Tuple[Tuple[Box, int, Tuple[int, ...]], ...]
    """``(box, depth, undecided-constraint indices)`` per stranded box."""


@dataclass(frozen=True)
class SweepResult:
    """Certified bounds produced by the subdivision sweep."""

    lower: Number
    undecided: Number
    boxes_examined: int
    evaluations_saved: int = 0
    """Per-constraint box evaluations skipped by branch-and-bound pruning."""

    early_exit: bool = False
    """Whether a ``target_gap`` / ``max_boxes`` budget stopped the sweep."""

    heap_peak: int = 0
    """Largest refinement frontier held during the sweep."""

    frontier: Optional[SweepFrontier] = None
    """The undecided-box frontier, when collected (pure depth budgets only)."""

    @property
    def upper(self) -> Number:
        """A certified upper bound on the measure."""
        return self.lower + self.undecided


def _undecided_constraints(
    active: Tuple[Constraint, ...],
    mapping: Dict[int, Interval],
    registry: PrimitiveRegistry,
    argument: Optional[Interval],
) -> Optional[Tuple[Constraint, ...]]:
    """Evaluate the active constraints on a box.

    Returns ``None`` when some constraint provably fails, and otherwise the
    tuple of constraints the box could not decide (empty means all proven).
    """
    undecided = []
    for constraint in active:
        status = constraint.box_status(mapping, registry, argument)
        if status is False:
            return None
        if status is None:
            undecided.append(constraint)
    return tuple(undecided)


def _sweep(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int,
    registry: Optional[PrimitiveRegistry],
    argument: Optional[Interval],
    stats: Optional[PerfStats],
    target_gap: Number,
    max_boxes: Optional[int],
    accepted: Optional[List[Box]],
    resume: Optional[SweepFrontier] = None,
    collect_frontier: bool = False,
) -> SweepResult:
    """The shared traversal behind :func:`sweep_measure` and
    :func:`sweep_accepted_boxes`.

    When ``accepted`` is a list, every box on which all constraints provably
    hold is appended to it; the accepted volumes always sum to the returned
    lower bound, whatever budget stopped the sweep.

    With ``resume``, the refinement starts from the children of a shallower
    budget's stranded boxes instead of the unit box; the returned bounds and
    work counters fold the shallow run's in, so they equal a from-scratch
    sweep at ``max_depth`` (see the module docstring for the ``heap_peak``
    caveat).  Resuming assumes pure depth budgets on both sides and is
    incompatible with ``accepted`` (the shallow run's witnesses are gone).
    """
    registry = registry or default_registry()
    if dimension == 0:
        satisfied = constraints.satisfied_by({}, registry)
        if satisfied and accepted is not None:
            accepted.append(unit_box(0))
        value = Fraction(1) if satisfied else Fraction(0)
        if stats is not None:
            stats.sweep_boxes_examined += 1
        return SweepResult(value, Fraction(0), 1)
    if resume is not None and (
        accepted is not None or target_gap > 0 or max_boxes is not None
    ):
        raise ValueError(
            "a sweep can only resume a frontier under a pure depth budget, "
            "without collecting accepted boxes"
        )

    lower: Number = Fraction(0)
    undecided: Number = Fraction(0)
    examined = 0
    saved = 0
    total_constraints = len(constraints)
    frontier_boxes: Optional[List[Tuple[Box, int, Tuple[int, ...]]]] = (
        [] if collect_frontier else None
    )
    index_of: Dict[Constraint, int] = (
        {constraint: index for index, constraint in enumerate(constraints.constraints)}
        if collect_frontier
        else {}
    )

    # Max-heap on box volume (heapq is a min-heap, so volumes are negated);
    # the push counter breaks volume ties deterministically in insertion
    # order.  ``pending`` tracks the total volume still on the frontier, so
    # the gap test below is O(1).
    if resume is None:
        heap = [(Fraction(-1), 0, unit_box(dimension), 0, constraints.constraints)]
        pending: Number = Fraction(1)
        pushes = 1
        base_lower: Number = Fraction(0)
        base_examined = 0
        base_saved = 0
        base_peak = 0
    else:
        # Seed with the *children* of the stranded boxes: the shallow run
        # already popped and evaluated the boxes themselves (that pop is in
        # its counters), and a from-scratch deeper sweep would hand exactly
        # the stored undecided constraints down to these children.
        heap = []
        pending = Fraction(0)
        pushes = 0
        for box, depth, active_indices in resume.boxes:
            active = tuple(constraints.constraints[index] for index in active_indices)
            for child in box.split():
                heapq.heappush(heap, (-child.volume, pushes, child, depth + 1, active))
                pushes += 1
                pending = pending + child.volume
        base_lower = resume.lower
        base_examined = resume.boxes_examined
        base_saved = resume.evaluations_saved
        base_peak = resume.heap_peak
    heap_peak = len(heap)
    early_exit = False
    while heap:
        if (max_boxes is not None and examined >= max_boxes) or (
            target_gap > 0 and undecided + pending <= target_gap
        ):
            # Budget reached: everything still on the frontier is undecided.
            early_exit = True
            for negated_volume, _, _, _, _ in heap:
                undecided = undecided - negated_volume
            break
        negated_volume, _, box, depth, active = heapq.heappop(heap)
        volume = -negated_volume
        pending = pending - volume
        examined += 1
        saved += total_constraints - len(active)
        mapping: Dict[int, Interval] = {
            index: interval for index, interval in enumerate(box.intervals)
        }
        remaining = _undecided_constraints(active, mapping, registry, argument)
        if remaining is None:
            continue
        if not remaining:
            lower = lower + volume
            if accepted is not None:
                accepted.append(box)
            continue
        if depth >= max_depth:
            undecided = undecided + volume
            if frontier_boxes is not None:
                frontier_boxes.append(
                    (box, depth, tuple(index_of[constraint] for constraint in remaining))
                )
            continue
        for child in box.split():
            heapq.heappush(heap, (-child.volume, pushes, child, depth + 1, remaining))
            pushes += 1
        pending = pending + volume
        if len(heap) > heap_peak:
            heap_peak = len(heap)
    if stats is not None:
        # Work counters reflect the work *this* traversal performed: a
        # resumed sweep reports only its refinement here, while the result
        # below folds the shallow run's counters in for bit-identity.
        stats.sweep_boxes_examined += examined
        stats.sweep_evaluations_saved += saved
        if early_exit:
            stats.sweep_early_exits += 1
        if heap_peak > stats.sweep_heap_peak:
            stats.sweep_heap_peak = heap_peak
    frontier = None
    if frontier_boxes is not None and not early_exit:
        frontier = SweepFrontier(
            max_depth,
            base_lower + lower,
            base_examined + examined,
            base_saved + saved,
            max(base_peak, heap_peak),
            tuple(frontier_boxes),
        )
    return SweepResult(
        base_lower + lower,
        undecided,
        base_examined + examined,
        base_saved + saved,
        early_exit,
        max(base_peak, heap_peak),
        frontier,
    )


def sweep_accepted_boxes(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
) -> List[Box]:
    """The sweep's accepted boxes: pairwise almost-disjoint sub-boxes of the
    unit cube on which every constraint provably holds.

    The boxes witness the lower bound of :func:`sweep_measure` (their volumes
    sum to it) and are the raw material of the interval traces used by the
    intersection type system's inference oracle (Sec. 4).
    """
    accepted: List[Box] = []
    _sweep(
        constraints,
        dimension,
        max_depth,
        registry,
        argument,
        stats=None,
        target_gap=Fraction(0),
        max_boxes=None,
        accepted=accepted,
    )
    return accepted


def sweep_measure(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
    stats: Optional[PerfStats] = None,
    target_gap: Number = Fraction(0),
    max_boxes: Optional[int] = None,
    resume: Optional[SweepFrontier] = None,
    collect_frontier: bool = False,
) -> SweepResult:
    """Certified lower/upper bounds on the measure of ``constraints`` in
    ``[0,1]^dim``.

    ``max_depth`` bounds the number of bisections along any branch of the
    subdivision tree; the undecided volume shrinks (for interval-separable
    constraints) as the depth grows, mirroring the completeness argument of
    Thm. 3.8.  ``target_gap`` and ``max_boxes`` are optional early-exit
    budgets (see the module docstring); with both unset the result is
    bit-identical to the historical fixed-depth depth-first sweep.

    ``collect_frontier`` attaches the undecided-box frontier to the result
    (pure depth budgets only), and ``resume`` warm-starts the sweep from a
    shallower budget's frontier of the *same* constraint set: bounds and
    work counters come out bit-identical to a from-scratch run at
    ``max_depth``, at the cost of refining only what the shallower budget
    left undecided.
    """
    if resume is not None and resume.max_depth >= max_depth:
        raise ValueError(
            f"can only resume a shallower frontier: depth {resume.max_depth} "
            f"is not below the requested {max_depth}"
        )
    return _sweep(
        constraints,
        dimension,
        max_depth,
        registry,
        argument,
        stats,
        target_gap,
        max_boxes,
        accepted=None,
        resume=resume,
        collect_frontier=collect_frontier,
    )


# ---------------------------------------------------------------------------
# Frontier persistence: an exact JSON form for the sharded sweep store.
# ---------------------------------------------------------------------------


def encode_frontier(frontier: SweepFrontier) -> Optional[list]:
    """A JSON-safe rendering of a frontier, or ``None`` if one is impossible.

    Box endpoints and the accepted mass round-trip exactly as ``"p/q"``
    fraction strings (bisection of the unit box only ever produces
    fractions; anything else refuses to encode rather than lose precision).
    """
    if not isinstance(frontier.lower, Fraction):
        return None
    boxes = []
    for box, depth, active in frontier.boxes:
        intervals = []
        for interval in box.intervals:
            if not isinstance(interval.lo, Fraction) or not isinstance(
                interval.hi, Fraction
            ):
                return None
            intervals.append([str(interval.lo), str(interval.hi)])
        boxes.append([intervals, depth, list(active)])
    return [
        frontier.max_depth,
        str(frontier.lower),
        frontier.boxes_examined,
        frontier.evaluations_saved,
        frontier.heap_peak,
        boxes,
    ]


def decode_frontier(encoded, constraint_count: int) -> Optional[SweepFrontier]:
    """Invert :func:`encode_frontier`; anything malformed reads as ``None``.

    ``constraint_count`` bounds the stored constraint indices -- an entry
    whose indices do not fit the set it is resumed against is unusable and
    must read as a miss, never mis-resolve.
    """
    try:
        max_depth, lower, boxes_examined, evaluations_saved, heap_peak, boxes = encoded
        decoded = []
        for intervals, depth, active in boxes:
            if not all(
                isinstance(index, int) and 0 <= index < constraint_count
                for index in active
            ):
                return None
            box = Box(
                Interval(Fraction(lo), Fraction(hi)) for lo, hi in intervals
            )
            decoded.append((box, int(depth), tuple(active)))
        return SweepFrontier(
            int(max_depth),
            Fraction(lower),
            int(boxes_examined),
            int(evaluations_saved),
            int(heap_peak),
            tuple(decoded),
        )
    except (TypeError, ValueError, ZeroDivisionError):
        return None
