"""Certified measures by interval subdivision (the paper's sweep algorithm).

Section 7.1 describes the lower-bound prototype as "a simple sweep algorithm
to search for terminating interval traces by splitting the unit box".  This
module implements that sweep over an arbitrary constraint set: the unit box is
recursively bisected; boxes on which interval evaluation *proves* all
constraints are added to the lower bound, boxes that provably violate some
constraint are discarded, and undecided boxes are split until a depth budget
is reached.  The result is a pair of certified bounds

    lower  <=  Lebesgue measure of the solution set  <=  lower + undecided

valid for any constraint set built from interval-preserving primitives,
including the non-linear ones (``sig``, ``exp``) for which the polytope oracle
does not apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Union

from repro.intervals.box import Box, unit_box
from repro.intervals.interval import Interval
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import ConstraintSet

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SweepResult:
    """Certified bounds produced by the subdivision sweep."""

    lower: Number
    undecided: Number
    boxes_examined: int

    @property
    def upper(self) -> Number:
        """A certified upper bound on the measure."""
        return self.lower + self.undecided


def sweep_accepted_boxes(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
):
    """The sweep's accepted boxes: pairwise almost-disjoint sub-boxes of the unit
    cube on which every constraint provably holds.

    The boxes witness the lower bound of :func:`sweep_measure` (their volumes
    sum to it) and are the raw material of the interval traces used by the
    intersection type system's inference oracle (Sec. 4).
    """
    registry = registry or default_registry()
    accepted = []
    if dimension == 0:
        if constraints.satisfied_by({}, registry):
            accepted.append(unit_box(0))
        return accepted
    stack = [(unit_box(dimension), 0)]
    while stack:
        box, depth = stack.pop()
        mapping: Dict[int, Interval] = {
            index: interval for index, interval in enumerate(box.intervals)
        }
        status = constraints.box_status(mapping, registry, argument)
        if status is True:
            accepted.append(box)
            continue
        if status is False or depth >= max_depth:
            continue
        left, right = box.split()
        stack.append((left, depth + 1))
        stack.append((right, depth + 1))
    return accepted


def sweep_measure(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
) -> SweepResult:
    """Certified lower/upper bounds on the measure of ``constraints`` in ``[0,1]^dim``.

    ``max_depth`` bounds the number of bisections along any branch of the
    subdivision tree; the undecided volume shrinks (for interval-separable
    constraints) as the depth grows, mirroring the completeness argument of
    Thm. 3.8.
    """
    registry = registry or default_registry()
    if dimension == 0:
        satisfied = constraints.satisfied_by({}, registry)
        value = Fraction(1) if satisfied else Fraction(0)
        return SweepResult(value, Fraction(0), 1)

    lower: Number = Fraction(0)
    undecided: Number = Fraction(0)
    examined = 0

    stack = [(unit_box(dimension), 0)]
    while stack:
        box, depth = stack.pop()
        examined += 1
        mapping: Dict[int, Interval] = {
            index: interval for index, interval in enumerate(box.intervals)
        }
        status = constraints.box_status(mapping, registry, argument)
        if status is True:
            lower = lower + box.volume
            continue
        if status is False:
            continue
        if depth >= max_depth:
            undecided = undecided + box.volume
            continue
        left, right = box.split()
        stack.append((left, depth + 1))
        stack.append((right, depth + 1))
    return SweepResult(lower, undecided, examined)
