"""Certified measures by adaptive interval subdivision (the paper's sweep).

Section 7.1 describes the lower-bound prototype as "a simple sweep algorithm
to search for terminating interval traces by splitting the unit box".  This
module implements that sweep over an arbitrary constraint set: the unit box
is bisected, boxes on which interval evaluation *proves* all constraints are
added to the lower bound, boxes that provably violate some constraint are
discarded, and undecided boxes are refined until a budget is exhausted.  The
result is a pair of certified bounds

    lower  <=  Lebesgue measure of the solution set  <=  lower + undecided

valid for any constraint set built from interval-preserving primitives,
including the non-linear ones (``sig``, ``exp``) for which the polytope
oracle does not apply.

Refinement is *prioritized*: undecided boxes live on a max-heap ordered by
volume, so the split that can shrink the undecided gap the most always
happens first (each bisection is along the box's widest dimension, exactly
the split the old fixed-depth recursion performed).  The completeness
argument of Thm. 3.8 only needs the undecided volume to shrink -- it does
not mandate uniform-depth round-robin splitting -- which frees the budget
knobs:

* ``max_depth`` bounds the number of bisections along any branch (the
  classic knob; with only this set, the adaptive sweep examines exactly the
  boxes of the old depth-first sweep and returns bit-identical bounds --
  exact rational sums are order-independent),
* ``target_gap`` stops refining as soon as the total undecided volume drops
  to the target, so easy sets stop after a handful of boxes instead of
  exhausting the depth budget,
* ``max_boxes`` caps the number of boxes examined outright.

The subdivision is also branch-and-bound pruned: a constraint proven
``True`` on a box stays true on every sub-box (interval evaluation is
inclusion-monotone), so children only re-evaluate the constraints their
parent could not decide.  The pruning changes no verdicts -- a box's status
over the remaining constraints equals its status over the full set -- it
only skips redundant ``box_status`` evaluations, which are reported through
:class:`~repro.geometry.stats.PerfStats` and on :class:`SweepResult`.

Without contraction every box is a pure bisection of the unit cube, so its
volume is *exactly* ``2**-depth``: the heap keys on the integer depth
(order-isomorphic to volume, ties broken by the same push counter) and
accepted/undecided mass accumulates in integer numerators at scale
``2**max_depth``, materializing the exact ``Fraction`` bounds only once at
the end -- the same rational values the historical per-box ``Fraction``
sums produced, bit for bit.  Contraction shaves boxes to non-power-of-two
volumes, so that regime keys the heap on exact ``-volume`` instead.

With ``use_kernel`` the traversal classifies boxes in *chunks* through the
vectorized tape of :mod:`repro.geometry.kernel` instead of one scalar
``box_status`` walk per box.  The chunking is a re-batching of the exact
scalar pop order -- a chunk only extends while the heap's top holds at
least half the first popped volume, and any child a chunk member generates
has at most half that volume *and* a later push counter, so every chunk
member precedes every such child in the scalar order too.  The kernel only
*classifies* (its outward-rounded float intervals enclose the scalar ones,
so its ``True``/``False`` verdicts imply the scalar verdicts; its
inward-rounded inner intervals certify lanes whose scalar verdict is
provably ``None``; every other lane is re-checked with the exact scalar
``box_status``); all accepted mass stays on the exact ``Fraction`` path.
Bounds, counters, frontiers and every persisted :class:`SweepResult` are
therefore bit-identical to the scalar sweep, and a set the kernel cannot
compile silently falls back.

``contract`` independently enables the interval-Newton / monotonicity
contractor (:mod:`repro.geometry.contract`) on boxes classification leaves
undecided: certifiably-violating slabs are shaved off and fully-monotone
constraints are decided at their worst corner, moving volume out of the
undecided gap at equal box budget.  Contraction *changes* the refinement
tree (deliberately -- bounds only tighten), so it is off by default and
contract-enabled results persist under distinct store keys.

:func:`sweep_measure` and :func:`sweep_accepted_boxes` share one traversal
core (:func:`_sweep`), so the accepted boxes witnessing a lower bound (the
raw material of the intersection type system's inference oracle, Sec. 4)
can never drift from the bound itself.

Depth-budgeted sweeps are *resumable*: with ``collect_frontier=True`` the
result carries a :class:`SweepFrontier` -- the undecided boxes the depth
budget stranded, each with its depth and the indices of the constraints it
could not decide -- and a deeper sweep can ``resume`` from that frontier
instead of re-bisecting everything the shallower budget already decided.
Because a box's verdict depends only on the box and its constraints, the
resumed sweep's bounds and work counters (``boxes_examined``,
``evaluations_saved``) are bit-identical to a from-scratch sweep at the
deeper budget; only ``heap_peak``, a diagnostic high-water mark of a
traversal order the resumed sweep never performs, is reported as the
maximum of the two runs' peaks.  Frontiers are only collected (and only
usable) for pure depth budgets -- an early-exited sweep's frontier would
not determine the deeper result.  :func:`encode_frontier` /
:func:`decode_frontier` give frontiers an exact JSON form so the batch
cache can persist them next to the sweep bounds, letting warm reruns
resume across processes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.geometry import kernel as _kernel
from repro.geometry.contract import contract_box
from repro.geometry.stats import PerfStats
from repro.intervals.box import Box, unit_box
from repro.intervals.interval import Interval, float_pair
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet

Number = Union[Fraction, float]

_KERNEL_CHUNK = 256
"""Default chunk size of the vectorized classification path.

Per-box numpy dispatch overhead keeps falling as chunks grow; 256 lanes is
where the curve flattens on the non-affine library while chunk arrays stay
a few kilobytes.  Any chunk size yields bit-identical results (the chunk is
always a prefix of the scalar pop order), so this is a pure speed knob.
"""

_KERNEL_WARMUP = 64
"""Boxes classified through the scalar loop before the kernel engages.

Tiny sweeps (converged blocks re-swept at a deeper budget, low-dimensional
factors) never amortize the tape compilation and the numpy per-op overhead
on chunks of a handful of lanes; they finish inside the warmup and never
touch numpy at all.  Classification is identical on both paths, so the
handoff point cannot affect results -- only speed.
"""


@dataclass(frozen=True)
class SweepFrontier:
    """The resumable state of a depth-budgeted sweep.

    Everything a deeper sweep needs to continue where a shallower budget
    stopped: the boxes the budget left undecided (each with its subdivision
    depth and the *indices* -- into the swept set's canonical constraint
    tuple -- of the constraints it could not decide), plus the accepted mass
    and work counters accumulated so far, so the resumed result reports
    cumulative numbers identical to a from-scratch run.  Constraint indices
    rather than constraints keep the frontier position-independent and
    JSON-serializable (:func:`encode_frontier`).
    """

    max_depth: int
    """The depth budget this frontier was stranded at."""

    lower: Number
    """Accepted mass up to ``max_depth`` (the shallow sweep's lower bound)."""

    boxes_examined: int
    evaluations_saved: int
    heap_peak: int
    boxes: Tuple[Tuple[Box, int, Tuple[int, ...]], ...]
    """``(box, depth, undecided-constraint indices)`` per stranded box."""


@dataclass(frozen=True)
class SweepResult:
    """Certified bounds produced by the subdivision sweep."""

    lower: Number
    undecided: Number
    boxes_examined: int
    evaluations_saved: int = 0
    """Per-constraint box evaluations skipped by branch-and-bound pruning."""

    early_exit: bool = False
    """Whether a ``target_gap`` / ``max_boxes`` budget stopped the sweep."""

    heap_peak: int = 0
    """Largest refinement frontier held during the sweep."""

    frontier: Optional[SweepFrontier] = None
    """The undecided-box frontier, when collected (pure depth budgets only)."""

    @property
    def upper(self) -> Number:
        """A certified upper bound on the measure."""
        return self.lower + self.undecided


def _dyadic_split(box: Box, depth: int) -> Tuple[Box, Box]:
    """``box.split()`` specialized to the pure-bisection (dyadic) regime.

    A depth-``k`` box of the round-robin bisection of the unit cube has its
    first ``k mod d`` dimensions one level narrower than the rest, so the
    first widest dimension -- the one :meth:`Box.widest_dimension` scans
    for -- is exactly ``k mod d``.  Computing it arithmetically (and the
    midpoint inline) skips the per-split width comparisons, and the halves
    are built without re-validating endpoints (``lo < mid < hi`` holds by
    construction and all three are already ``Fraction``): the produced
    ``Interval``/``Box`` values are identical to ``box.split()``'s -- both
    are plain frozen dataclasses over the same field values.

    The midpoint itself is assembled from integers: the split axis has
    been bisected ``splits = depth // d`` times, so it spans
    ``[c / 2**splits, (c + 1) / 2**splits]`` and its midpoint is
    ``(2c + 1) / 2**(splits + 1)`` -- an odd numerator over a power of
    two, hence already in lowest terms.  Writing the two integers into a
    raw ``Fraction`` skips the normalising ``gcd`` of ``(lo + hi) / 2``
    while producing the identical (value-equal, hash-equal) rational.
    """
    intervals = box.intervals
    dimension = len(intervals)
    axis = depth % dimension
    interval = intervals[axis]
    lo, hi = interval.lo, interval.hi
    splits = depth // dimension
    # c = lo * 2**splits; lo is reduced with a power-of-two denominator.
    shift = splits + 1 - (lo.denominator.bit_length() - 1)
    mid = object.__new__(Fraction)
    mid._numerator = (lo.numerator << shift) + 1
    mid._denominator = 1 << (splits + 1)
    left = object.__new__(Interval)
    object.__setattr__(left, "lo", lo)
    object.__setattr__(left, "hi", mid)
    right = object.__new__(Interval)
    object.__setattr__(right, "lo", mid)
    object.__setattr__(right, "hi", hi)
    prefix = intervals[:axis]
    suffix = intervals[axis + 1 :]
    low = object.__new__(Box)
    object.__setattr__(low, "intervals", prefix + (left,) + suffix)
    high = object.__new__(Box)
    object.__setattr__(high, "intervals", prefix + (right,) + suffix)
    return low, high


def _box_float_row(box: Box) -> Tuple[List[float], List[float]]:
    """Float endpoint rows of a box whose endpoints convert exactly."""
    return (
        [float(interval.lo) for interval in box.intervals],
        [float(interval.hi) for interval in box.intervals],
    )


def _undecided_constraints(
    active: Tuple[Constraint, ...],
    mapping: Dict[int, Interval],
    registry: PrimitiveRegistry,
    argument: Optional[Interval],
) -> Optional[Tuple[Constraint, ...]]:
    """Evaluate the active constraints on a box.

    Returns ``None`` when some constraint provably fails, and otherwise the
    tuple of constraints the box could not decide (empty means all proven).
    """
    undecided = []
    for constraint in active:
        status = constraint.box_status(mapping, registry, argument)
        if status is False:
            return None
        if status is None:
            undecided.append(constraint)
    return tuple(undecided)


def _sweep(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int,
    registry: Optional[PrimitiveRegistry],
    argument: Optional[Interval],
    stats: Optional[PerfStats],
    target_gap: Number,
    max_boxes: Optional[int],
    accepted: Optional[List[Box]],
    resume: Optional[SweepFrontier] = None,
    collect_frontier: bool = False,
    use_kernel: bool = False,
    contract: bool = False,
    kernel_chunk: int = _KERNEL_CHUNK,
    kernel_warmup: int = _KERNEL_WARMUP,
) -> SweepResult:
    """The shared traversal behind :func:`sweep_measure` and
    :func:`sweep_accepted_boxes`.

    When ``accepted`` is a list, every box on which all constraints provably
    hold is appended to it; the accepted volumes always sum to the returned
    lower bound, whatever budget stopped the sweep.

    With ``resume``, the refinement starts from the children of a shallower
    budget's stranded boxes instead of the unit box; the returned bounds and
    work counters fold the shallow run's in, so they equal a from-scratch
    sweep at ``max_depth`` (see the module docstring for the ``heap_peak``
    caveat).  Resuming assumes pure depth budgets on both sides and is
    incompatible with ``accepted`` (the shallow run's witnesses are gone).

    ``use_kernel`` routes classification through the vectorized chunk
    kernel when the set compiles (bit-identical results, see the module
    docstring); ``contract`` enables the interval-Newton contractor (which
    changes -- only ever tightens -- the results).
    """
    registry = registry or default_registry()
    if dimension == 0:
        satisfied = constraints.satisfied_by({}, registry)
        if satisfied and accepted is not None:
            accepted.append(unit_box(0))
        value = Fraction(1) if satisfied else Fraction(0)
        if stats is not None:
            stats.sweep_boxes_examined += 1
        return SweepResult(value, Fraction(0), 1)
    if resume is not None and (
        accepted is not None or target_gap > 0 or max_boxes is not None
    ):
        raise ValueError(
            "a sweep can only resume a frontier under a pure depth budget, "
            "without collecting accepted boxes"
        )

    # Kernel compilation is deferred past a scalar warmup
    # (:data:`_KERNEL_WARMUP` boxes): sweeps that finish inside it never pay
    # for the tape or numpy dispatch on near-empty chunks.
    compiled = None
    kernel_pending = use_kernel and _kernel.kernel_available()

    # Heap entries are ``(key, counter, box, depth, active)`` in both
    # regimes (see the module docstring): integer-depth keys and scaled
    # integer mass without contraction, exact ``-volume`` keys and
    # ``Fraction`` mass with it.  The push counter breaks key ties
    # deterministically in insertion order; ``pending`` tracks the volume
    # still on the frontier so the gap test is O(1), and is only
    # maintained when a gap budget exists.
    dyadic = not contract
    unit = 1 << max_depth
    use_gap = target_gap > 0
    if use_gap:
        gap = target_gap if isinstance(target_gap, Fraction) else Fraction(target_gap)
        gap_num = gap.numerator << max_depth
        gap_den = gap.denominator

    lower: Number = Fraction(0)
    undecided: Number = Fraction(0)
    pending: Number = Fraction(0)
    lower_scaled = 0
    undecided_scaled = 0
    pending_scaled = 0
    examined = 0
    saved = 0
    kernel_batches = 0
    kernel_boxes = 0
    contractions = 0
    contracted_volume = 0.0
    total_constraints = len(constraints)
    frontier_boxes: Optional[List[Tuple[Box, int, Tuple[int, ...]]]] = (
        [] if collect_frontier else None
    )
    index_of: Dict[Constraint, int] = (
        {constraint: index for index, constraint in enumerate(constraints.constraints)}
        if collect_frontier or kernel_pending
        else {}
    )

    if resume is None:
        root_key = 0 if dyadic else Fraction(-1)
        heap = [(root_key, 0, unit_box(dimension), 0, constraints.constraints)]
        if dyadic:
            pending_scaled = unit
        else:
            pending = Fraction(1)
        pushes = 1
        base_lower: Number = Fraction(0)
        base_examined = 0
        base_saved = 0
        base_peak = 0
    else:
        # Seed with the *children* of the stranded boxes: the shallow run
        # already popped and evaluated the boxes themselves (that pop is in
        # its counters), and a from-scratch deeper sweep would hand exactly
        # the stored undecided constraints down to these children.
        heap = []
        pushes = 0
        for box, depth, active_indices in resume.boxes:
            active = tuple(constraints.constraints[index] for index in active_indices)
            child_depth = depth + 1
            for child in _dyadic_split(box, depth) if dyadic else box.split():
                key = child_depth if dyadic else -child.volume
                heapq.heappush(heap, (key, pushes, child, child_depth, active))
                pushes += 1
                if dyadic:
                    pending_scaled += unit >> child_depth
                else:
                    pending = pending + child.volume
        base_lower = resume.lower
        base_examined = resume.boxes_examined
        base_saved = resume.evaluations_saved
        base_peak = resume.heap_peak
    heap_peak = len(heap)
    early_exit = False
    while heap:
        if kernel_pending and examined >= kernel_warmup:
            # Warmup done: compile the set and hand the heap over to
            # the chunked kernel loop below, which re-checks budgets
            # before touching a box.
            kernel_pending = False
            compiled = _kernel.compile_constraint_set(constraints)
            if compiled is not None and compiled.uses_argument and argument is None:
                # The scalar path raises ``_UnknownEvaluation`` on the
                # first argument-dependent constraint; fall back so it
                # raises identically instead of the kernel reading
                # garbage.
                compiled = None
            if compiled is not None:
                break
        if (max_boxes is not None and examined >= max_boxes) or (
            use_gap
            and (
                (undecided_scaled + pending_scaled) * gap_den <= gap_num
                if dyadic
                else undecided + pending <= gap
            )
        ):
            # Budget reached: everything still on the frontier is undecided.
            early_exit = True
            if dyadic:
                for entry in heap:
                    undecided_scaled += unit >> entry[0]
            else:
                for entry in heap:
                    undecided = undecided - entry[0]
            break
        key, _, box, depth, active = heapq.heappop(heap)
        if dyadic:
            scaled = unit >> depth
            pending_scaled -= scaled
        else:
            volume = -key
            pending = pending - volume
        examined += 1
        saved += total_constraints - len(active)
        mapping: Dict[int, Interval] = {
            index: interval for index, interval in enumerate(box.intervals)
        }
        remaining = _undecided_constraints(active, mapping, registry, argument)
        if remaining is None:
            continue
        if not remaining:
            if dyadic:
                lower_scaled += scaled
            else:
                lower = lower + volume
            if accepted is not None:
                accepted.append(box)
            continue
        if contract:
            outcome = contract_box(box, remaining, registry, argument)
            if outcome is None:
                # The whole box certifiably violates a constraint.
                contractions += 1
                contracted_volume += float(volume)
                continue
            new_box, new_remaining = outcome
            new_volume = new_box.volume
            if new_volume != volume or len(new_remaining) != len(remaining):
                contractions += 1
                contracted_volume += float(volume - new_volume)
                box, volume, remaining = new_box, new_volume, new_remaining
                if not remaining:
                    lower = lower + volume
                    if accepted is not None:
                        accepted.append(box)
                    continue
        if depth >= max_depth:
            if dyadic:
                undecided_scaled += scaled
            else:
                undecided = undecided + volume
            if frontier_boxes is not None:
                frontier_boxes.append(
                    (box, depth, tuple(index_of[constraint] for constraint in remaining))
                )
            continue
        child_depth = depth + 1
        child_key = child_depth if dyadic else -(volume / 2)
        for child in _dyadic_split(box, depth) if dyadic else box.split():
            heapq.heappush(heap, (child_key, pushes, child, child_depth, remaining))
            pushes += 1
        if dyadic:
            pending_scaled += scaled
        else:
            pending = pending + volume
        if len(heap) > heap_peak:
            heap_peak = len(heap)
    if compiled is not None and not early_exit:
        argument_pairs = None
        if argument is not None:
            lo_below, lo_above = float_pair(argument.lo)
            hi_below, hi_above = float_pair(argument.hi)
            argument_pairs = ((lo_below, hi_above), (lo_above, hi_below))
        kernel_true = _kernel.KERNEL_TRUE
        kernel_false = _kernel.KERNEL_FALSE
        kernel_sure = _kernel.KERNEL_UNDECIDED_SURE
        # Pure-bisection endpoints up to depth 52 are dyadic rationals that
        # convert to float exactly: endpoint conversion needs no rounding
        # analysis, and outer and inner banks coincide.  In that regime the
        # loop also carries one (lo_row, hi_row) pair of float lists per
        # heap entry (keyed by its push counter) and derives children's
        # rows from the parent's by float arithmetic -- the midpoint
        # ``(lo + hi) / 2`` of exact dyadic floats is again exact -- so
        # chunk arrays never convert a ``Fraction`` at all.  Entries pushed
        # before the handoff (warmup, resume seeds) have no row yet and
        # convert lazily on first pop.
        exact_floats = dyadic and max_depth <= 52
        float_rows: Dict[int, Tuple[List[float], List[float]]] = {}
        while heap:
            if (max_boxes is not None and examined >= max_boxes) or (
                use_gap
                and (
                    (undecided_scaled + pending_scaled) * gap_den <= gap_num
                    if dyadic
                    else undecided + pending <= gap
                )
            ):
                early_exit = True
                if dyadic:
                    for entry in heap:
                        undecided_scaled += unit >> entry[0]
                else:
                    for entry in heap:
                        undecided = undecided - entry[0]
                break
            # Pop a prefix of the scalar pop order: a chunk only extends
            # while the heap's top holds at least *half* the first popped
            # volume (one extra depth level).  Any child a chunk member
            # generates has at most half that volume and a strictly later
            # push counter, so the scalar sweep pops every chunk member
            # before any such child -- the chunk is the scalar order,
            # re-batched.
            chunk = [heapq.heappop(heap)]
            first_key = chunk[0][0]
            limit = first_key + 1 if dyadic else first_key / 2
            while len(chunk) < kernel_chunk and heap and heap[0][0] <= limit:
                chunk.append(heapq.heappop(heap))
            if exact_floats:
                chunk_rows = [
                    float_rows.pop(entry[1], None) or _box_float_row(entry[2])
                    for entry in chunk
                ]
                arrays = _kernel.rows_to_arrays(
                    [row[0] for row in chunk_rows],
                    [row[1] for row in chunk_rows],
                )
            else:
                arrays = _kernel.boxes_to_arrays([entry[2] for entry in chunk])
            verdicts = [
                vector.tolist()  # plain ints: lane reads skip numpy scalars
                for vector in compiled.classify(*arrays, argument_pairs)
            ]
            kernel_batches += 1
            kernel_boxes += len(chunk)
            interrupted = False
            for position, entry in enumerate(chunk):
                if (max_boxes is not None and examined >= max_boxes) or (
                    use_gap
                    and (
                        (undecided_scaled + pending_scaled) * gap_den <= gap_num
                        if dyadic
                        else undecided + pending <= gap
                    )
                ):
                    # Budget reached mid-chunk: the unprocessed suffix goes
                    # back on the heap with its original tuples, restoring
                    # exactly the frontier the scalar sweep holds here.
                    early_exit = True
                    interrupted = True
                    for unprocessed in chunk[position:]:
                        heapq.heappush(heap, unprocessed)
                    if dyadic:
                        for entry in heap:
                            undecided_scaled += unit >> entry[0]
                    else:
                        for entry in heap:
                            undecided = undecided - entry[0]
                    break
                key, _, box, depth, active = entry
                if dyadic:
                    scaled = unit >> depth
                    pending_scaled -= scaled
                else:
                    volume = -key
                    pending = pending - volume
                examined += 1
                saved += total_constraints - len(active)
                box_mapping: Optional[Dict[int, Interval]] = None
                rejected = False
                undecided_here: List[Constraint] = []
                for constraint in active:
                    code = verdicts[index_of[constraint]][position]
                    if code == kernel_true:
                        continue
                    if code == kernel_false:
                        rejected = True
                        break
                    if code == kernel_sure:
                        # The inner enclosure certifies the scalar verdict
                        # is ``None``; no scalar evaluation needed.
                        undecided_here.append(constraint)
                        continue
                    # Plain kernel-undecided lane: exact scalar re-check,
                    # which also reproduces the scalar path's domain errors.
                    if box_mapping is None:
                        box_mapping = {
                            index: interval
                            for index, interval in enumerate(box.intervals)
                        }
                    status = constraint.box_status(box_mapping, registry, argument)
                    if status is False:
                        rejected = True
                        break
                    if status is None:
                        undecided_here.append(constraint)
                if rejected:
                    continue
                remaining = tuple(undecided_here)
                if not remaining:
                    if dyadic:
                        lower_scaled += scaled
                    else:
                        lower = lower + volume
                    if accepted is not None:
                        accepted.append(box)
                    continue
                if contract:
                    outcome = contract_box(box, remaining, registry, argument)
                    if outcome is None:
                        contractions += 1
                        contracted_volume += float(volume)
                        continue
                    new_box, new_remaining = outcome
                    new_volume = new_box.volume
                    if new_volume != volume or len(new_remaining) != len(remaining):
                        contractions += 1
                        contracted_volume += float(volume - new_volume)
                        box, volume, remaining = new_box, new_volume, new_remaining
                        if not remaining:
                            lower = lower + volume
                            if accepted is not None:
                                accepted.append(box)
                            continue
                if depth >= max_depth:
                    if dyadic:
                        undecided_scaled += scaled
                    else:
                        undecided = undecided + volume
                    if frontier_boxes is not None:
                        frontier_boxes.append(
                            (
                                box,
                                depth,
                                tuple(index_of[constraint] for constraint in remaining),
                            )
                        )
                    continue
                child_depth = depth + 1
                child_key = child_depth if dyadic else -(volume / 2)
                if exact_floats:
                    # Split the float rows alongside the exact split.  The
                    # unchanged side of each child shares the parent's list
                    # (rows are never mutated once stored), the changed
                    # side is a one-element copy-and-patch.
                    row_lo, row_hi = chunk_rows[position]
                    axis = depth % dimension
                    mid_float = (row_lo[axis] + row_hi[axis]) / 2
                    left_hi = row_hi.copy()
                    left_hi[axis] = mid_float
                    right_lo = row_lo.copy()
                    right_lo[axis] = mid_float
                    low_child, high_child = _dyadic_split(box, depth)
                    heapq.heappush(
                        heap, (child_key, pushes, low_child, child_depth, remaining)
                    )
                    float_rows[pushes] = (row_lo, left_hi)
                    pushes += 1
                    heapq.heappush(
                        heap, (child_key, pushes, high_child, child_depth, remaining)
                    )
                    float_rows[pushes] = (right_lo, row_hi)
                    pushes += 1
                else:
                    for child in _dyadic_split(box, depth) if dyadic else box.split():
                        heapq.heappush(
                            heap, (child_key, pushes, child, child_depth, remaining)
                        )
                        pushes += 1
                if dyadic:
                    pending_scaled += scaled
                else:
                    pending = pending + volume
                # The scalar sweep still holds this chunk's unprocessed
                # suffix on its heap; fold it into the peak.
                virtual_size = len(heap) + (len(chunk) - position - 1)
                if virtual_size > heap_peak:
                    heap_peak = virtual_size
            if interrupted:
                break
    if dyadic:
        lower = Fraction(lower_scaled, unit)
        undecided = Fraction(undecided_scaled, unit)
    if stats is not None:
        # Work counters reflect the work *this* traversal performed: a
        # resumed sweep reports only its refinement here, while the result
        # below folds the shallow run's counters in for bit-identity.
        stats.sweep_boxes_examined += examined
        stats.sweep_evaluations_saved += saved
        if early_exit:
            stats.sweep_early_exits += 1
        if heap_peak > stats.sweep_heap_peak:
            stats.sweep_heap_peak = heap_peak
        if kernel_batches:
            stats.kernel_batches += kernel_batches
            stats.kernel_boxes += kernel_boxes
        if contractions:
            stats.contractions += contractions
            stats.contracted_volume += contracted_volume
    frontier = None
    if frontier_boxes is not None and not early_exit:
        frontier = SweepFrontier(
            max_depth,
            base_lower + lower,
            base_examined + examined,
            base_saved + saved,
            max(base_peak, heap_peak),
            tuple(frontier_boxes),
        )
    return SweepResult(
        base_lower + lower,
        undecided,
        base_examined + examined,
        base_saved + saved,
        early_exit,
        max(base_peak, heap_peak),
        frontier,
    )


def sweep_accepted_boxes(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
) -> List[Box]:
    """The sweep's accepted boxes: pairwise almost-disjoint sub-boxes of the
    unit cube on which every constraint provably holds.

    The boxes witness the lower bound of :func:`sweep_measure` (their volumes
    sum to it) and are the raw material of the interval traces used by the
    intersection type system's inference oracle (Sec. 4).
    """
    accepted: List[Box] = []
    _sweep(
        constraints,
        dimension,
        max_depth,
        registry,
        argument,
        stats=None,
        target_gap=Fraction(0),
        max_boxes=None,
        accepted=accepted,
    )
    return accepted


def sweep_measure(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
    stats: Optional[PerfStats] = None,
    target_gap: Number = Fraction(0),
    max_boxes: Optional[int] = None,
    resume: Optional[SweepFrontier] = None,
    collect_frontier: bool = False,
    use_kernel: bool = False,
    contract: bool = False,
    kernel_chunk: int = _KERNEL_CHUNK,
    kernel_warmup: int = _KERNEL_WARMUP,
) -> SweepResult:
    """Certified lower/upper bounds on the measure of ``constraints`` in
    ``[0,1]^dim``.

    ``max_depth`` bounds the number of bisections along any branch of the
    subdivision tree; the undecided volume shrinks (for interval-separable
    constraints) as the depth grows, mirroring the completeness argument of
    Thm. 3.8.  ``target_gap`` and ``max_boxes`` are optional early-exit
    budgets (see the module docstring); with both unset the result is
    bit-identical to the historical fixed-depth depth-first sweep.

    ``collect_frontier`` attaches the undecided-box frontier to the result
    (pure depth budgets only), and ``resume`` warm-starts the sweep from a
    shallower budget's frontier of the *same* constraint set: bounds and
    work counters come out bit-identical to a from-scratch run at
    ``max_depth``, at the cost of refining only what the shallower budget
    left undecided.

    ``use_kernel`` batches classification through the vectorized kernel
    when the set compiles -- every field of the result stays bit-identical
    (see the module docstring) -- and ``contract`` turns on the
    interval-Newton contractor, which tightens bounds and is therefore a
    result-changing knob.
    """
    if resume is not None and resume.max_depth >= max_depth:
        raise ValueError(
            f"can only resume a shallower frontier: depth {resume.max_depth} "
            f"is not below the requested {max_depth}"
        )
    return _sweep(
        constraints,
        dimension,
        max_depth,
        registry,
        argument,
        stats,
        target_gap,
        max_boxes,
        accepted=None,
        resume=resume,
        collect_frontier=collect_frontier,
        use_kernel=use_kernel,
        contract=contract,
        kernel_chunk=kernel_chunk,
        kernel_warmup=kernel_warmup,
    )


# ---------------------------------------------------------------------------
# Frontier persistence: an exact JSON form for the sharded sweep store.
# ---------------------------------------------------------------------------


def encode_frontier(frontier: SweepFrontier) -> Optional[list]:
    """A JSON-safe rendering of a frontier, or ``None`` if one is impossible.

    Box endpoints and the accepted mass round-trip exactly as ``"p/q"``
    fraction strings (bisection of the unit box only ever produces
    fractions; anything else refuses to encode rather than lose precision).
    """
    if not isinstance(frontier.lower, Fraction):
        return None
    boxes = []
    for box, depth, active in frontier.boxes:
        intervals = []
        for interval in box.intervals:
            if not isinstance(interval.lo, Fraction) or not isinstance(
                interval.hi, Fraction
            ):
                return None
            intervals.append([str(interval.lo), str(interval.hi)])
        boxes.append([intervals, depth, list(active)])
    return [
        frontier.max_depth,
        str(frontier.lower),
        frontier.boxes_examined,
        frontier.evaluations_saved,
        frontier.heap_peak,
        boxes,
    ]


def decode_frontier(encoded, constraint_count: int) -> Optional[SweepFrontier]:
    """Invert :func:`encode_frontier`; anything malformed reads as ``None``.

    ``constraint_count`` bounds the stored constraint indices -- an entry
    whose indices do not fit the set it is resumed against is unusable and
    must read as a miss, never mis-resolve.
    """
    try:
        max_depth, lower, boxes_examined, evaluations_saved, heap_peak, boxes = encoded
        decoded = []
        for intervals, depth, active in boxes:
            if not all(
                isinstance(index, int) and 0 <= index < constraint_count
                for index in active
            ):
                return None
            box = Box(
                Interval(Fraction(lo), Fraction(hi)) for lo, hi in intervals
            )
            decoded.append((box, int(depth), tuple(active)))
        return SweepFrontier(
            int(max_depth),
            Fraction(lower),
            int(boxes_examined),
            int(evaluations_saved),
            int(heap_peak),
            tuple(decoded),
        )
    except (TypeError, ValueError, ZeroDivisionError):
        return None
