"""Certified measures by interval subdivision (the paper's sweep algorithm).

Section 7.1 describes the lower-bound prototype as "a simple sweep algorithm
to search for terminating interval traces by splitting the unit box".  This
module implements that sweep over an arbitrary constraint set: the unit box is
recursively bisected; boxes on which interval evaluation *proves* all
constraints are added to the lower bound, boxes that provably violate some
constraint are discarded, and undecided boxes are split until a depth budget
is reached.  The result is a pair of certified bounds

    lower  <=  Lebesgue measure of the solution set  <=  lower + undecided

valid for any constraint set built from interval-preserving primitives,
including the non-linear ones (``sig``, ``exp``) for which the polytope oracle
does not apply.

The subdivision is branch-and-bound pruned: a constraint proven ``True`` on a
box stays true on every sub-box (interval evaluation is inclusion-monotone),
so children only re-evaluate the constraints their parent could not decide.
The pruning changes no verdicts -- a box's status over the remaining
constraints equals its status over the full set -- it only skips redundant
``box_status`` evaluations, which are reported through
:class:`~repro.geometry.stats.PerfStats` and on :class:`SweepResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple, Union

from repro.geometry.stats import PerfStats
from repro.intervals.box import unit_box
from repro.intervals.interval import Interval
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SweepResult:
    """Certified bounds produced by the subdivision sweep."""

    lower: Number
    undecided: Number
    boxes_examined: int
    evaluations_saved: int = 0
    """Per-constraint box evaluations skipped by branch-and-bound pruning."""

    @property
    def upper(self) -> Number:
        """A certified upper bound on the measure."""
        return self.lower + self.undecided


def _undecided_constraints(
    active: Tuple[Constraint, ...],
    mapping: Dict[int, Interval],
    registry: PrimitiveRegistry,
    argument: Optional[Interval],
) -> Optional[Tuple[Constraint, ...]]:
    """Evaluate the active constraints on a box.

    Returns ``None`` when some constraint provably fails, and otherwise the
    tuple of constraints the box could not decide (empty means all proven).
    """
    undecided = []
    for constraint in active:
        status = constraint.box_status(mapping, registry, argument)
        if status is False:
            return None
        if status is None:
            undecided.append(constraint)
    return tuple(undecided)


def sweep_accepted_boxes(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
):
    """The sweep's accepted boxes: pairwise almost-disjoint sub-boxes of the unit
    cube on which every constraint provably holds.

    The boxes witness the lower bound of :func:`sweep_measure` (their volumes
    sum to it) and are the raw material of the interval traces used by the
    intersection type system's inference oracle (Sec. 4).
    """
    registry = registry or default_registry()
    accepted = []
    if dimension == 0:
        if constraints.satisfied_by({}, registry):
            accepted.append(unit_box(0))
        return accepted
    stack = [(unit_box(dimension), 0, constraints.constraints)]
    while stack:
        box, depth, active = stack.pop()
        mapping: Dict[int, Interval] = {
            index: interval for index, interval in enumerate(box.intervals)
        }
        remaining = _undecided_constraints(active, mapping, registry, argument)
        if remaining is None:
            continue
        if not remaining:
            accepted.append(box)
            continue
        if depth >= max_depth:
            continue
        left, right = box.split()
        stack.append((left, depth + 1, remaining))
        stack.append((right, depth + 1, remaining))
    return accepted


def sweep_measure(
    constraints: ConstraintSet,
    dimension: int,
    max_depth: int = 12,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
    stats: Optional[PerfStats] = None,
) -> SweepResult:
    """Certified lower/upper bounds on the measure of ``constraints`` in ``[0,1]^dim``.

    ``max_depth`` bounds the number of bisections along any branch of the
    subdivision tree; the undecided volume shrinks (for interval-separable
    constraints) as the depth grows, mirroring the completeness argument of
    Thm. 3.8.
    """
    registry = registry or default_registry()
    if dimension == 0:
        satisfied = constraints.satisfied_by({}, registry)
        value = Fraction(1) if satisfied else Fraction(0)
        if stats is not None:
            stats.sweep_boxes_examined += 1
        return SweepResult(value, Fraction(0), 1)

    lower: Number = Fraction(0)
    undecided: Number = Fraction(0)
    examined = 0
    saved = 0
    total_constraints = len(constraints)

    stack = [(unit_box(dimension), 0, constraints.constraints)]
    while stack:
        box, depth, active = stack.pop()
        examined += 1
        saved += total_constraints - len(active)
        mapping: Dict[int, Interval] = {
            index: interval for index, interval in enumerate(box.intervals)
        }
        remaining = _undecided_constraints(active, mapping, registry, argument)
        if remaining is None:
            continue
        if not remaining:
            lower = lower + box.volume
            continue
        if depth >= max_depth:
            undecided = undecided + box.volume
            continue
        left, right = box.split()
        stack.append((left, depth + 1, remaining))
        stack.append((right, depth + 1, remaining))
    if stats is not None:
        stats.sweep_boxes_examined += examined
        stats.sweep_evaluations_saved += saved
    return SweepResult(lower, undecided, examined, saved)
