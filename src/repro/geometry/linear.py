"""Linear structure of constraint sets.

This module extracts half-space representations from symbolic constraint sets
(when every constraint is affine in the sample variables) and decomposes a
constraint set into *independent blocks*: groups of variables that never occur
together in a constraint.  The measure of the whole set is the product of the
measures of the blocks, which keeps the expensive polytope computations
low-dimensional (the benchmark programs mostly produce univariate blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet, Relation


@dataclass(frozen=True)
class HalfSpace:
    """The half space ``sum_i coefficients[i] * x_i  <=  bound``.

    ``strict`` records whether the original constraint was strict; strictness
    is irrelevant for Lebesgue measure but is kept for exactness bookkeeping
    (e.g. emptiness of zero-dimensional sets).
    """

    coefficients: Tuple[Tuple[int, Fraction], ...]
    bound: Fraction
    strict: bool = False

    def as_dict(self) -> Dict[int, Fraction]:
        return dict(self.coefficients)

    def variables(self) -> Tuple[int, ...]:
        return tuple(index for index, _ in self.coefficients)

    def is_trivially_true(self) -> bool:
        """A constraint with no variables that holds (e.g. ``-1 <= 0``)."""
        if self.coefficients:
            return False
        if self.strict:
            return 0 < self.bound
        return 0 <= self.bound

    def is_trivially_false(self) -> bool:
        if self.coefficients:
            return False
        return not self.is_trivially_true()


def halfspace_from_constraint(
    constraint: Constraint, registry: Optional[PrimitiveRegistry] = None
) -> Optional[HalfSpace]:
    """Convert one symbolic constraint to a half space, or ``None`` if non-affine."""
    registry = registry or default_registry()
    form = constraint.linear_form(registry)
    if form is None:
        return None
    relation = constraint.relation
    # form <= 0  : coeffs . x <= -constant
    # form <  0  : coeffs . x <  -constant
    # form >  0  : -coeffs . x < constant
    # form >= 0  : -coeffs . x <= constant
    if relation in (Relation.LE, Relation.LT):
        coefficients = form.as_dict()
        bound = -form.constant
        strict = relation is Relation.LT
    else:
        coefficients = {index: -value for index, value in form.as_dict().items()}
        bound = form.constant
        strict = relation is Relation.GT
    return HalfSpace(tuple(sorted(coefficients.items())), bound, strict)


def halfspaces_from_constraints(
    constraints: ConstraintSet, registry: Optional[PrimitiveRegistry] = None
) -> Optional[List[HalfSpace]]:
    """Convert a constraint set to half spaces; ``None`` if any constraint is non-affine."""
    registry = registry or default_registry()
    halfspaces: List[HalfSpace] = []
    for constraint in constraints:
        halfspace = halfspace_from_constraint(constraint, registry)
        if halfspace is None:
            return None
        halfspaces.append(halfspace)
    return halfspaces


def independent_blocks(
    dimension: int, halfspaces: Sequence[HalfSpace]
) -> List[Tuple[List[int], List[HalfSpace]]]:
    """Partition variables ``0..dimension-1`` into independent blocks.

    Two variables belong to the same block when some half space mentions both;
    each returned block carries the half spaces over its variables.  Variables
    mentioned by no constraint form singleton blocks with no half spaces
    (their contribution to the measure is the full unit interval).
    Constant half spaces (no variables) are attached to the first block, or
    returned as a separate block with an empty variable list when
    ``dimension`` is 0.
    """
    parent = list(range(dimension))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    def union(left: int, right: int) -> None:
        parent[find(left)] = find(right)

    for halfspace in halfspaces:
        variables = halfspace.variables()
        for first, second in zip(variables, variables[1:]):
            union(first, second)

    groups: Dict[int, List[int]] = {}
    for index in range(dimension):
        groups.setdefault(find(index), []).append(index)

    blocks: List[Tuple[List[int], List[HalfSpace]]] = []
    constant_halfspaces: List[HalfSpace] = []
    halfspaces_by_root: Dict[int, List[HalfSpace]] = {root: [] for root in groups}
    for halfspace in halfspaces:
        variables = halfspace.variables()
        if not variables:
            constant_halfspaces.append(halfspace)
            continue
        halfspaces_by_root[find(variables[0])].append(halfspace)
    for root, variables in sorted(groups.items()):
        blocks.append((sorted(variables), halfspaces_by_root[root]))
    if constant_halfspaces:
        if blocks:
            blocks[0] = (blocks[0][0], blocks[0][1] + constant_halfspaces)
        else:
            blocks.append(([], constant_halfspaces))
    return blocks


def univariate_interval(
    variable: int, halfspaces: Sequence[HalfSpace]
) -> Optional[Tuple[Fraction, Fraction]]:
    """Measure-relevant bounds of a single variable under univariate half spaces.

    Returns the intersection of ``[0, 1]`` with all half spaces, as a pair
    ``(lo, hi)`` with ``lo <= hi`` (or ``None`` if the intersection is empty
    or some half space mentions another variable).
    """
    lo, hi = Fraction(0), Fraction(1)
    for halfspace in halfspaces:
        variables = halfspace.variables()
        if not variables:
            if halfspace.is_trivially_false():
                return None
            continue
        if variables != (variable,):
            return None
        coefficient = halfspace.as_dict()[variable]
        bound = halfspace.bound
        if coefficient > 0:
            hi = min(hi, bound / coefficient)
        else:
            lo = max(lo, bound / coefficient)
    if lo > hi:
        return None
    return lo, hi
