"""Volume of convex polytopes clipped to the unit cube.

The AST verifier (Sec. 7.2 of the paper) restricts primitive operations so
that branching probabilities are volumes of convex polytopes; the paper uses
Lasserre's analytic formula via the `vinci` implementation of Bueler, Enge and
Fukuda.  We substitute a pipeline built on scipy:

1. find a strictly interior point of the polytope (Chebyshev centre via
   ``scipy.optimize.linprog``),
2. enumerate its vertices with ``scipy.spatial.HalfspaceIntersection``,
3. take the volume of their convex hull (``scipy.spatial.ConvexHull``).

Degenerate polytopes (empty interior) have Lebesgue measure zero and are
reported as 0.  The result is a float; exact rational measures are produced
by the univariate fast path in :mod:`repro.geometry.measure` and by the
subdivision sweep, which certify bounds when exactness matters.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.linear import HalfSpace

__all__ = ["box_clip_volume", "polygon_area_exact", "polytope_volume"]

_FEASIBILITY_TOLERANCE = 1e-9


def _halfspace_matrix(
    dimension: int, halfspaces: Sequence[HalfSpace]
) -> Optional[np.ndarray]:
    """Stack problem half spaces and unit-cube facets as rows ``[a | -b]``.

    Rows follow the scipy ``HalfspaceIntersection`` convention
    ``a . x + b' <= 0`` with ``b' = -bound``.  Returns ``None`` when a
    constant half space is trivially false (empty polytope).
    """
    rows: List[List[float]] = []
    for halfspace in halfspaces:
        if not halfspace.variables():
            if halfspace.is_trivially_false():
                return None
            continue
        row = [0.0] * dimension
        for index, coefficient in halfspace.coefficients:
            row[index] = float(coefficient)
        rows.append(row + [-float(halfspace.bound)])
    for index in range(dimension):
        lower = [0.0] * dimension
        lower[index] = -1.0
        rows.append(lower + [0.0])
        upper = [0.0] * dimension
        upper[index] = 1.0
        rows.append(upper + [-1.0])
    return np.asarray(rows, dtype=float)


def _chebyshev_centre(matrix: np.ndarray, dimension: int) -> Optional[np.ndarray]:
    """An interior point maximising the distance to every facet, or ``None``."""
    from scipy.optimize import linprog

    normals = matrix[:, :-1]
    offsets = -matrix[:, -1]
    norms = np.linalg.norm(normals, axis=1)
    # maximise r  s.t.  normals . x + r * ||normal|| <= offsets
    objective = np.zeros(dimension + 1)
    objective[-1] = -1.0
    lhs = np.hstack([normals, norms.reshape(-1, 1)])
    result = linprog(
        objective,
        A_ub=lhs,
        b_ub=offsets,
        bounds=[(None, None)] * dimension + [(0, None)],
        method="highs",
    )
    if not result.success or result.x[-1] <= _FEASIBILITY_TOLERANCE:
        return None
    return result.x[:-1]


def polytope_volume(dimension: int, halfspaces: Sequence[HalfSpace]) -> float:
    """Volume of ``{x in [0,1]^dimension | halfspaces}`` as a float.

    A polytope with empty interior (infeasible or lower-dimensional) has
    volume 0.  The 0-dimensional polytope has volume 1 when all constant
    constraints hold and 0 otherwise.
    """
    if dimension == 0:
        if any(h.is_trivially_false() for h in halfspaces):
            return 0.0
        return 1.0
    matrix = _halfspace_matrix(dimension, halfspaces)
    if matrix is None:
        return 0.0
    interior = _chebyshev_centre(matrix, dimension)
    if interior is None:
        return 0.0
    from scipy.spatial import ConvexHull, HalfspaceIntersection, QhullError

    try:
        intersection = HalfspaceIntersection(matrix, interior)
        hull = ConvexHull(intersection.intersections)
    except QhullError:
        return 0.0
    return float(hull.volume)


def box_clip_volume(dimension: int, halfspaces: Sequence[HalfSpace]) -> float:
    """Alias of :func:`polytope_volume` kept for readability at call sites."""
    return polytope_volume(dimension, halfspaces)


# ---------------------------------------------------------------------------
# Exact two-dimensional volumes.
# ---------------------------------------------------------------------------


def polygon_area_exact(halfspaces: Sequence[HalfSpace]):
    """Exact rational area of ``{x in [0,1]^2 | halfspaces}``.

    The paper's verifier reports exact rational probabilities; two-dimensional
    constraint blocks (which is all the Table 2 programs need beyond the
    univariate fast path) are measured exactly here: candidate vertices are
    the pairwise intersections of the bounding lines (constraints plus the
    four unit-square edges), feasible vertices are kept, and the area of their
    convex hull is computed by the shoelace formula -- all in ``Fraction``
    arithmetic.  Returns ``None`` when a half space has non-rational data.
    """
    lines = []  # each line: (a0, a1, b) meaning a0*x0 + a1*x1 <= b
    for halfspace in halfspaces:
        coefficients = halfspace.as_dict()
        a0 = coefficients.get(0, Fraction(0))
        a1 = coefficients.get(1, Fraction(0))
        bound = halfspace.bound
        if not all(isinstance(value, Fraction) for value in (a0, a1, bound)):
            return None
        if a0 == 0 and a1 == 0:
            if halfspace.is_trivially_false():
                return Fraction(0)
            continue
        lines.append((a0, a1, bound))
    lines.append((Fraction(-1), Fraction(0), Fraction(0)))
    lines.append((Fraction(1), Fraction(0), Fraction(1)))
    lines.append((Fraction(0), Fraction(-1), Fraction(0)))
    lines.append((Fraction(0), Fraction(1), Fraction(1)))
    # Coincident bounding lines contribute the same intersections and the
    # same feasibility cuts; dropping exact duplicates keeps the pairwise
    # intersection loop (quadratic in the line count) small without touching
    # the computed area.
    lines = list(dict.fromkeys(lines))

    def feasible(point) -> bool:
        x0, x1 = point
        return all(a0 * x0 + a1 * x1 <= b for a0, a1, b in lines)

    vertices = set()
    for index, (a0, a1, b0) in enumerate(lines):
        for c0, c1, b1 in lines[index + 1 :]:
            determinant = a0 * c1 - a1 * c0
            if determinant == 0:
                continue
            x0 = (b0 * c1 - a1 * b1) / determinant
            x1 = (a0 * b1 - b0 * c0) / determinant
            point = (x0, x1)
            if feasible(point):
                vertices.add(point)
    if len(vertices) < 3:
        return Fraction(0)
    hull = _convex_hull_2d(sorted(vertices))
    area = Fraction(0)
    for index in range(len(hull)):
        x0, y0 = hull[index]
        x1, y1 = hull[(index + 1) % len(hull)]
        area += x0 * y1 - x1 * y0
    return abs(area) / 2


def _convex_hull_2d(points):
    """Andrew's monotone-chain convex hull over exact rational points."""

    def cross(origin, first, second):
        return (first[0] - origin[0]) * (second[1] - origin[1]) - (
            first[1] - origin[1]
        ) * (second[0] - origin[0])

    if len(points) <= 2:
        return list(points)
    lower = []
    for point in points:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], point) <= 0:
            lower.pop()
        lower.append(point)
    upper = []
    for point in reversed(points):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], point) <= 0:
            upper.pop()
        upper.append(point)
    return lower[:-1] + upper[:-1]
