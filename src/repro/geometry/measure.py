"""The measuring facade used by the lower-bound engine and the AST verifier.

``measure_constraints`` decides how to measure the solution set of a
constraint set inside the unit cube:

* zero-dimensional sets are decided exactly,
* affine constraint sets are split into independent variable blocks
  (:func:`repro.geometry.linear.independent_blocks`); univariate blocks are
  measured exactly with rational arithmetic, multivariate blocks up to a
  configurable dimension with the polytope oracle, and larger blocks with the
  certified subdivision sweep,
* non-affine constraint sets fall back to the sweep (sound lower bound).

The result records whether the returned value is exact or only a certified
lower bound, so callers (in particular the lower-bound engine, whose whole
purpose is soundness) can propagate that information.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Union

from repro.intervals.interval import Interval
from repro.geometry.linear import (
    HalfSpace,
    halfspaces_from_constraints,
    independent_blocks,
    univariate_interval,
)
from repro.geometry.polytope import polytope_volume
from repro.geometry.stats import PerfStats
from repro.geometry.sweep import sweep_measure
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import ConstraintSet, remap_constraints

Number = Union[Fraction, float]


@dataclass(frozen=True)
class MeasureOptions:
    """Tuning knobs for the measuring facade.

    Instances are frozen and hashable: the measure engine keys its memo
    tables (and, stringified, the persistent cross-process stores) on them,
    so every field that can change a computed value must live here.
    """

    max_hull_dimension: int = 8
    """Largest block dimension handled by the polytope (convex hull) oracle."""

    sweep_depth: int = 14
    """Bisection depth of the certified sweep fallback."""

    prefer_sweep: bool = False
    """Force the sweep even for affine constraint sets (used by ablations)."""

    block_sweep: bool = True
    """Sweep non-affine sets block by block instead of jointly.

    Each connected variable block is swept in its own ``[0,1]^{d_i}`` box and
    the bounds combine as interval products, which provably tightens lower
    bounds at equal depth budget -- emitted (inexact) bounds therefore
    *change* when toggling this, unlike every other cache knob.  The CLI's
    ``--no-block-sweep`` restores the joint sweep.
    """

    sweep_target_gap: Number = Fraction(0)
    """Stop refining once the undecided volume is at most this (0 = never)."""

    sweep_max_boxes: Optional[int] = None
    """Cap on boxes examined per sweep (``None`` = depth budget only)."""

    sweep_kernel: bool = True
    """Classify sweep boxes in chunks through the vectorized numpy kernel.

    The kernel is a pure classifier whose results are bit-identical to the
    scalar path (see :mod:`repro.geometry.sweep`), so this knob -- unlike
    ``block_sweep`` -- never changes a computed value and is deliberately
    *excluded* from persistent store keys.  ``--no-sweep-kernel`` restores
    the scalar loop; sets the kernel cannot compile fall back per set.
    """

    contract: bool = False
    """Run the interval-Newton / monotonicity contractor on undecided boxes.

    Contraction certifiably tightens bounds at equal box budget, so emitted
    (inexact) values *change* when toggled -- like ``block_sweep`` it is a
    result-changing knob, keyed into the persistent stores (only when
    enabled, so legacy entries stay valid) and re-blessed in benchmarks.
    """


@dataclass(frozen=True)
class MeasureResult:
    """A measure together with its provenance."""

    value: Number
    exact: bool
    lower_bound: bool
    method: str

    upper: Optional[Number] = None
    """A certified upper bound accompanying an inexact lower bound, when one
    is known (sweep-derived results carry ``lower + undecided``)."""

    def as_float(self) -> float:
        return float(self.value)

    def certified_upper(self) -> Number:
        """The tightest certified upper bound this result can vouch for.

        Exact results are their own upper bound; inexact ones fall back to
        the recorded sweep upper, or to 1 (the whole cube) when none exists.
        """
        if self.exact and not self.lower_bound:
            return self.value
        if self.upper is not None:
            return self.upper
        return Fraction(1)


def measure_constraints(
    constraints: ConstraintSet,
    dimension: int,
    options: Optional[MeasureOptions] = None,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[Interval] = None,
    stats: Optional[PerfStats] = None,
) -> MeasureResult:
    """Measure the solution set of ``constraints`` inside ``[0, 1]^dimension``.

    ``stats``, when provided (the :class:`repro.geometry.engine.MeasureEngine`
    always does), accumulates sweep-box and polytope-invocation counters; it
    never affects the computed value.
    """
    options = options or MeasureOptions()
    registry = registry or default_registry()

    if dimension == 0:
        satisfied = constraints.satisfied_by({}, registry)
        value = Fraction(1) if satisfied else Fraction(0)
        return MeasureResult(value, exact=True, lower_bound=False, method="trivial")

    if constraints.contains_star():
        # The measure depends on an unknown recursive outcome; the only sound
        # answer usable as a lower bound is 0.
        return MeasureResult(Fraction(0), exact=False, lower_bound=True, method="unknown-star")

    halfspaces = None
    if not options.prefer_sweep and argument is None and not constraints.contains_argument():
        halfspaces = halfspaces_from_constraints(constraints, registry)

    if halfspaces is None:
        if stats is not None:
            stats.block_computations += 1
        sweep = sweep_measure(
            constraints,
            dimension,
            max_depth=options.sweep_depth,
            registry=registry,
            argument=argument,
            stats=stats,
            target_gap=options.sweep_target_gap,
            max_boxes=options.sweep_max_boxes,
            use_kernel=options.sweep_kernel,
            contract=options.contract,
        )
        exact = sweep.undecided == 0
        return MeasureResult(
            sweep.lower,
            exact=exact,
            lower_bound=not exact,
            method="sweep",
            upper=None if exact else sweep.upper,
        )

    total: Number = Fraction(1)
    exact = True
    methods = set()
    for variables, block_halfspaces in independent_blocks(dimension, halfspaces):
        if stats is not None and block_halfspaces:
            stats.block_computations += 1
        block_value, block_exact, method = _measure_block(
            variables, block_halfspaces, constraints, options, registry, stats
        )
        methods.add(method)
        total = total * block_value
        exact = exact and block_exact
        if total == 0:
            break
    method = "+".join(sorted(methods)) if methods else "trivial"
    return MeasureResult(total, exact=exact, lower_bound=not exact, method=method)


def _measure_block(variables, halfspaces, constraints, options, registry, stats=None):
    """Measure one independent block; returns (value, exact, method)."""
    if not variables:
        # Only constant half spaces: 1 if all hold, 0 otherwise.
        if any(h.is_trivially_false() for h in halfspaces):
            return Fraction(0), True, "constant"
        return Fraction(1), True, "constant"
    if len(variables) == 1 and all(len(h.variables()) <= 1 for h in halfspaces):
        bounds = univariate_interval(variables[0], halfspaces)
        if bounds is None:
            return Fraction(0), True, "interval"
        lo, hi = bounds
        return hi - lo, True, "interval"
    if len(variables) <= options.max_hull_dimension:
        remapping = {variable: position for position, variable in enumerate(variables)}
        remapped = [
            HalfSpace(
                tuple(
                    sorted((remapping[index], coefficient) for index, coefficient in h.coefficients)
                ),
                h.bound,
                h.strict,
            )
            for h in halfspaces
        ]
        if len(variables) == 2:
            from repro.geometry.polytope import polygon_area_exact

            area = polygon_area_exact(remapped)
            if area is not None:
                return area, True, "polygon"
        if stats is not None:
            stats.polytope_calls += 1
        value = polytope_volume(len(variables), remapped)
        return value, False, "polytope"
    # Large multivariate block: certified sweep restricted to the block's
    # constraints (other blocks are measured separately).
    block_constraints = ConstraintSet(
        constraint
        for constraint in constraints
        if constraint.variables() & set(variables) or not constraint.variables()
    )
    remapped_constraints, block_dimension = _remap_constraints(block_constraints, variables)
    sweep = sweep_measure(
        remapped_constraints,
        block_dimension,
        max_depth=options.sweep_depth,
        registry=registry,
        stats=stats,
        target_gap=options.sweep_target_gap,
        max_boxes=options.sweep_max_boxes,
        use_kernel=options.sweep_kernel,
        contract=options.contract,
    )
    exact = sweep.undecided == 0
    return sweep.lower, exact, "sweep"


def _remap_constraints(constraints: ConstraintSet, variables):
    """Renumber the variables of a block to ``0..len(variables)-1``."""
    return remap_constraints(constraints, variables), len(variables)
