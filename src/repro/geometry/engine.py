"""The shared memoizing measure engine.

The verifier (:mod:`repro.astcheck`), the lower-bound engine
(:mod:`repro.lowerbound`), the counting-pattern analysis
(:mod:`repro.counting.pattern`) and the PAST checker
(:mod:`repro.pastcheck`) all reduce probabilities to measures of constraint
sets inside the unit cube.  The same sets come back again and again: every
budget of the old per-budget ``Papprox`` recursion re-measured every leaf,
the PAST verifier re-runs the AST verifier on the same execution tree, and
the refutation measures one pattern per sample argument.  A
:class:`MeasureEngine` makes that reuse explicit:

* constraint sets are *canonicalized* (duplicates dropped, constraints put in
  a deterministic order) so syntactically different prefixes of the same
  conjunction share one cache entry,
* results are memoized keyed by ``(canonical set, dimension, options,
  argument)``; the first caller pays, everyone else hits,
* complementary probabilistic branches are resolved algebraically: for a
  guard ``g`` the solution sets of ``C + (g <= 0)`` and ``C + (g > 0)``
  partition the solution set of ``C``, so once two of the three measures are
  cached the third is a subtraction -- applied only in the regime where the
  direct computation is guaranteed exact (all constraints univariate affine),
  so cached and uncached runs are bit-for-bit identical,
* a :class:`~repro.geometry.stats.PerfStats` instance counts requests,
  hits, sweep boxes and polytope invocations for benchmarks and ``--stats``.

Disabling the cache (``cache_enabled=False``, the CLI's
``--no-measure-cache``) turns the engine into a counted pass-through with the
same canonicalization, which is how the perf benchmark checks bit-identity.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.geometry.linear import halfspace_from_constraint
from repro.geometry.measure import MeasureOptions, MeasureResult, measure_constraints
from repro.geometry.stats import PerfStats
from repro.intervals.interval import Interval
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet

_CacheKey = Tuple[Tuple[Constraint, ...], int, MeasureOptions, Optional[Interval]]


def _encode_number(value) -> Optional[List]:
    """Encode a measure value for exact JSON round-tripping."""
    if isinstance(value, Fraction):
        return ["F", str(value)]
    if isinstance(value, float):
        return ["f", value.hex()]
    if isinstance(value, int):
        return ["F", str(Fraction(value))]
    return None


def _decode_number(encoded):
    """Invert :func:`_encode_number`; raises on malformed input."""
    kind, payload = encoded
    if kind == "F":
        return Fraction(payload)
    if kind == "f":
        return float.fromhex(payload)
    raise ValueError(f"unknown number encoding {kind!r}")


class MeasureEngine:
    """Memoizing, counting front end to :func:`measure_constraints`.

    One engine instance is meant to be shared by every analysis of a session
    (the CLI builds one per command); all callers then draw from one cache.
    """

    def __init__(
        self,
        options: Optional[MeasureOptions] = None,
        registry: Optional[PrimitiveRegistry] = None,
        cache_enabled: bool = True,
        stats: Optional[PerfStats] = None,
    ) -> None:
        self.options = options or MeasureOptions()
        self.registry = registry or default_registry()
        self.cache_enabled = cache_enabled
        self.stats = stats if stats is not None else PerfStats()
        self._cache: Dict[_CacheKey, MeasureResult] = {}
        self._imported: Dict[str, MeasureResult] = {}
        self._export_skip: set = set()
        self._unexported: list = []

    # -- canonicalization ----------------------------------------------------

    def canonicalize(self, constraints: ConstraintSet) -> ConstraintSet:
        """Dedupe and deterministically order a constraint set.

        The solution set of a conjunction is invariant under dropping
        duplicates and reordering, so canonical sets measure identically while
        maximizing cache sharing across call sites that accumulate the same
        constraints in different orders.  The canonical form is cached on the
        input instance (and the per-constraint sort keys on the constraints,
        which are shared across sets through common path prefixes), so
        repeated probes do not re-render symbolic values.
        """
        try:
            return constraints._canonical_form
        except AttributeError:
            pass
        unique = []
        seen = set()
        for constraint in constraints:
            if constraint not in seen:
                seen.add(constraint)
                unique.append(constraint)
        unique.sort(key=Constraint.sort_key)
        canonical = ConstraintSet(unique)
        object.__setattr__(constraints, "_canonical_form", canonical)
        return canonical

    # -- measuring -----------------------------------------------------------

    def measure(
        self,
        constraints: ConstraintSet,
        dimension: Optional[int] = None,
        argument: Optional[Interval] = None,
    ) -> MeasureResult:
        """Measure ``constraints`` inside ``[0, 1]^dimension`` through the cache.

        ``dimension`` defaults to ``constraints.dimension()`` (1 + the largest
        sample-variable index), matching the direct use in the AST verifier;
        the lower-bound engine passes the number of variables sampled along
        the path explicitly.
        """
        self.stats.measure_requests += 1
        canonical = self.canonicalize(constraints)
        if dimension is None:
            dimension = canonical.dimension()
        if not self.cache_enabled:
            return self._invoke(canonical, dimension, argument)
        key = (canonical.constraints, dimension, self.options, argument)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = None
        if self._imported:
            result = self._imported.get(self.persistent_key(canonical, dimension, argument))
            if result is not None:
                self.stats.persistent_hits += 1
        if result is None and argument is None:
            result = self._derive_complement(canonical, dimension)
        if result is None:
            result = self._invoke(canonical, dimension, argument)
        self._cache[key] = result
        self._unexported.append(key)
        return result

    def _invoke(
        self, canonical: ConstraintSet, dimension: int, argument: Optional[Interval]
    ) -> MeasureResult:
        self.stats.measure_calls += 1
        return measure_constraints(
            canonical,
            dimension,
            options=self.options,
            registry=self.registry,
            argument=argument,
            stats=self.stats,
        )

    # -- the complement rule ---------------------------------------------------

    def _derive_complement(
        self, canonical: ConstraintSet, dimension: int
    ) -> Optional[MeasureResult]:
        """Try to answer ``canonical`` as ``measure(prefix) - measure(partner)``.

        For any constraint ``c`` of the set, ``prefix = set - {c}`` is
        partitioned by ``c`` and its negation, so
        ``measure(set) = measure(prefix) - measure(prefix + not c)`` whenever
        both right-hand measures are known.  The rule is restricted to sets
        whose constraints are all affine in a single variable each: there the
        direct computation is the exact product of interval lengths, so the
        derived value provably equals what :func:`measure_constraints` would
        return and bit-identity between cached and uncached runs is preserved.
        """
        if not self._univariate_affine(canonical):
            return None
        for position, constraint in enumerate(canonical.constraints):
            partner = Constraint(constraint.value, constraint.relation.negation())
            rest = (
                canonical.constraints[:position] + canonical.constraints[position + 1 :]
            )
            partner_result = self._lookup_exact(rest + (partner,), dimension)
            if partner_result is None:
                continue
            prefix_result = self._lookup_exact(rest, dimension)
            if prefix_result is None:
                continue
            value = prefix_result.value - partner_result.value
            if value < 0:  # exact measures cannot go negative; be safe anyway
                value = Fraction(0)
            self.stats.complement_derivations += 1
            return MeasureResult(value, exact=True, lower_bound=False, method="complement")
        return None

    def _lookup_exact(
        self, constraints: Tuple[Constraint, ...], dimension: int
    ) -> Optional[MeasureResult]:
        """A cached exact rational measure for a constraint tuple, or ``None``.

        The empty conjunction needs no cache entry: its solution set is the
        whole cube, of measure exactly 1.
        """
        if not constraints:
            return MeasureResult(Fraction(1), exact=True, lower_bound=False, method="trivial")
        canonical = self.canonicalize(ConstraintSet(constraints))
        # In the univariate-affine regime the measure does not depend on the
        # ambient dimension (unconstrained variables contribute exactly 1), so
        # an entry cached under the set's own dimension is equally good.
        for candidate_dimension in (dimension, canonical.dimension()):
            cached = self._cache.get(
                (canonical.constraints, candidate_dimension, self.options, None)
            )
            if (
                cached is not None
                and cached.exact
                and not cached.lower_bound
                and isinstance(cached.value, Fraction)
            ):
                return cached
        return None

    def _univariate_affine(self, constraints: ConstraintSet) -> bool:
        """True iff every constraint is affine and mentions at most one variable.

        Such sets decompose into univariate blocks that the measure facade
        resolves with the always-exact interval method, which is what makes
        the complement rule's derived values bit-identical to direct ones.
        """
        for constraint in constraints:
            if len(constraint.variables()) > 1:
                return False
            if halfspace_from_constraint(constraint, self.registry) is None:
                return False
        return True

    # -- persistence -----------------------------------------------------------
    #
    # The batch subsystem (:mod:`repro.batch`) persists measure results across
    # processes.  Entries are keyed by a *string* rendering of the canonical
    # cache key: every constraint renders deterministically (the cached
    # ``Constraint.sort_key`` reprs are built from fractions, strings and
    # tuples only), so equal constraint sets produce equal keys in every
    # process, while the persistent store never needs to re-materialise a
    # :class:`~repro.symbolic.constraints.ConstraintSet` from disk -- lookups
    # always start from a live set whose key is recomputed.  Values round-trip
    # exactly: fractions as ``"p/q"`` strings, floats as ``float.hex()``.

    def registry_fingerprint(self) -> str:
        """A stable identifier of the primitive semantics behind the cache."""
        return ",".join(sorted(self.registry.names()))

    def persistent_key(
        self,
        canonical: ConstraintSet,
        dimension: int,
        argument: Optional[Interval] = None,
    ) -> str:
        """The deterministic cross-process cache key of one measure request."""
        options = self.options
        return "|".join(
            [
                ";".join(c.sort_key() for c in canonical.constraints),
                f"d{dimension}",
                f"o{options.max_hull_dimension}.{options.sweep_depth}.{int(options.prefer_sweep)}",
                f"a{argument!r}",
            ]
        )

    def export_cache_entries(self) -> Dict[str, List]:
        """Serialize memoized results added since the last import/export.

        Only entries cached since the previous export are visited (workers
        export after every job, so rescanning the whole memo table would be
        quadratic over a batch), and entries that were themselves imported
        are skipped: the caller merges the export into the store they came
        from, so re-serializing them would only waste work.
        """
        exported: Dict[str, List] = {}
        for constraints, dimension, _options, argument in self._unexported:
            key = self.persistent_key(ConstraintSet(constraints), dimension, argument)
            if key in self._export_skip:
                continue
            result = self._cache.get((constraints, dimension, _options, argument))
            if result is None:
                continue
            encoded = _encode_number(result.value)
            if encoded is None:
                continue
            exported[key] = [encoded, result.exact, result.lower_bound, result.method]
        self._unexported.clear()
        self._export_skip.update(exported)
        return exported

    def import_cache_entries(self, entries: Mapping[str, Iterable]) -> int:
        """Load serialized entries; malformed ones are skipped, not fatal.

        Imported results are consulted on in-memory cache misses (and counted
        as :attr:`PerfStats.persistent_hits`); they are byte-for-byte the
        results a cold engine would compute, so warm and cold runs stay
        bit-identical.
        """
        imported = 0
        for key, entry in entries.items():
            try:
                encoded_value, exact, lower_bound, method = entry
                value = _decode_number(encoded_value)
                if not isinstance(key, str) or not isinstance(method, str):
                    continue
                result = MeasureResult(
                    value, exact=bool(exact), lower_bound=bool(lower_bound), method=method
                )
            except (TypeError, ValueError, KeyError):
                continue
            self._imported[key] = result
            self._export_skip.add(key)
            imported += 1
        return imported

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        """Drop all memoized results (counters are kept)."""
        self._cache.clear()
        self._unexported.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)
