"""The shared memoizing measure engine.

The verifier (:mod:`repro.astcheck`), the lower-bound engine
(:mod:`repro.lowerbound`), the counting-pattern analysis
(:mod:`repro.counting.pattern`) and the PAST checker
(:mod:`repro.pastcheck`) all reduce probabilities to measures of constraint
sets inside the unit cube.  The same sets come back again and again: every
budget of the old per-budget ``Papprox`` recursion re-measured every leaf,
the PAST verifier re-runs the AST verifier on the same execution tree, and
the refutation measures one pattern per sample argument.  A
:class:`MeasureEngine` makes that reuse explicit:

* constraint sets are *canonicalized* (duplicates dropped, constraints put in
  a deterministic order) so syntactically different prefixes of the same
  conjunction share one cache entry,
* canonical sets are *block-decomposed*: the constraints are partitioned into
  connected components ("blocks") over shared sample variables
  (:meth:`~repro.symbolic.constraints.ConstraintSet.support_blocks`), each
  block is renumbered to variables ``0..k-1``, measured and memoized under
  its own canonical block key, and the full-set measure is the product of the
  block measures.  Two sets sharing a block -- even at different sample
  positions -- measure it once.  Decomposition is restricted to the regime
  where the product provably equals the monolithic computation (every
  constraint affine, no free argument, no unresolved recursion marker, sweep
  not forced); everything else takes the monolithic path unchanged,
* *non-affine* sets (``sig``/``exp`` constraints) are block-decomposed too,
  but into *swept* blocks: each block runs its own certified subdivision
  sweep in ``[0,1]^{d_i}`` and the per-block ``[lower, upper]`` intervals
  combine as products, which provably tightens the lower bound against the
  joint full-dimensional sweep at equal budget.  Because emitted (inexact)
  bounds improve, this path is gated by
  :attr:`~repro.geometry.measure.MeasureOptions.block_sweep` (default on;
  the CLI's ``--no-block-sweep`` restores the joint sweep).  Per-block
  :class:`~repro.geometry.sweep.SweepResult`\\ s are memoized under the
  position-independent canonical block key *plus the sweep budget* and
  persisted through the batch cache's ``sweeps-<prefix>.json`` shards, so a
  fleet sweeps each distinct block once, not once per process,
* results are memoized keyed by ``(canonical set, dimension, options,
  argument)`` -- block keys and full-set product keys live in the same memo
  table; the first caller pays, everyone else hits,
* complementary probabilistic branches are resolved algebraically *per
  block*: for a guard ``g`` the solution sets of ``C + (g <= 0)`` and
  ``C + (g > 0)`` partition the solution set of ``C``, so once two of the
  three measures are cached the third is a subtraction -- applied only in the
  regime where the direct computation is guaranteed exact (all constraints
  univariate affine), so cached and uncached runs are bit-for-bit identical,
* a :class:`~repro.geometry.stats.PerfStats` instance counts requests, hits,
  block lookups, sweep boxes and polytope invocations for benchmarks and
  ``--stats``.

Disabling the cache (``cache_enabled=False``, the CLI's
``--no-measure-cache``) turns the engine into a counted pass-through with the
same canonicalization *and the same block decomposition*, which is how the
perf benchmark checks bit-identity; ``block_decomposition=False`` (the CLI's
``--no-block-memo``) restores the whole-set-only memoization for ablations.

Invariants
----------

* **Bit-identity.**  Caching, block decomposition, persistence and telemetry
  are performance features, never numerical ones: a measure computed through
  any combination of memo hit, persistent-store import, complementary-branch
  subtraction or cold recomputation is the same exact :class:`Fraction` (or
  the same interval bracket on the swept path).  Optimizations that could
  perturb a result -- block products outside the provable regime, algebraic
  complements outside univariate-affine sets -- are *gated*, not risked.
* **Exactness tracking.**  Every result states whether it is exact; inexact
  (swept) results carry a certified ``[lower, upper]`` bracket, and derived
  bounds only ever consume the sound side.
* **Export/import round-trip.**  ``export_cache_entries`` /
  ``import_cache_entries`` (and their sweep twins) losslessly round-trip
  memo entries through JSON-safe tuples under a primitive-registry
  fingerprint; an import under a different fingerprint is a no-op, never a
  wrong answer.  Exports are incremental (entries new since the last
  export), which is what makes the daemon's per-request store merges cheap.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import repro.telemetry as telemetry
from repro.geometry.linear import halfspace_from_constraint
from repro.geometry.measure import MeasureOptions, MeasureResult, measure_constraints
from repro.geometry.stats import PerfStats
from repro.geometry.sweep import (
    _KERNEL_CHUNK as _SWEEP_KERNEL_CHUNK,
    SweepFrontier,
    SweepResult,
    decode_frontier,
    encode_frontier,
    sweep_measure,
)
from repro.intervals.interval import Interval
from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import Constraint, ConstraintSet, remap_constraints

Number = Union[Fraction, float]

_CacheKey = Tuple[Tuple[Constraint, ...], int, MeasureOptions, Optional[Interval]]

_SweepKey = Tuple[Tuple[Constraint, ...], int, MeasureOptions]

_Block = Tuple[ConstraintSet, int]
"""A renumbered canonical block and its dimension (= its variable count)."""

_MAX_PERSISTED_FRONTIER_BOXES = 2048
"""Frontiers larger than this are memoized but not persisted: the shard files
must stay small enough that a merge's read-modify-write cycle is cheap, and a
frontier that large means the block is near-degenerate anyway."""


def _encode_number(value) -> Optional[List]:
    """Encode a measure value for exact JSON round-tripping."""
    if isinstance(value, Fraction):
        return ["F", str(value)]
    if isinstance(value, float):
        return ["f", value.hex()]
    if isinstance(value, int):
        return ["F", str(Fraction(value))]
    return None


def _decode_number(encoded):
    """Invert :func:`_encode_number`; raises on malformed input."""
    kind, payload = encoded
    if kind == "F":
        return Fraction(payload)
    if kind == "f":
        return float.fromhex(payload)
    raise ValueError(f"unknown number encoding {kind!r}")


class MeasureEngine:
    """Memoizing, counting front end to :func:`measure_constraints`.

    One engine instance is meant to be shared by every analysis of a session
    (the CLI builds one per command); all callers then draw from one cache.
    """

    def __init__(
        self,
        options: Optional[MeasureOptions] = None,
        registry: Optional[PrimitiveRegistry] = None,
        cache_enabled: bool = True,
        stats: Optional[PerfStats] = None,
        block_decomposition: bool = True,
    ) -> None:
        self.options = options or MeasureOptions()
        self.registry = registry or default_registry()
        self.cache_enabled = cache_enabled
        self.block_decomposition = block_decomposition
        self.stats = stats if stats is not None else PerfStats()
        self._cache: Dict[_CacheKey, MeasureResult] = {}
        self._imported: Dict[str, MeasureResult] = {}
        self._export_skip: set = set()
        self._unexported: list = []
        # The sweep memo: per-block SweepResults keyed by the renumbered
        # canonical block plus the budget-bearing options, mirrored by a
        # persistent import/export side identical in shape to the measure
        # entries above.
        self._sweep_cache: Dict[_SweepKey, SweepResult] = {}
        self._sweep_imported: Dict[str, SweepResult] = {}
        self._sweep_export_skip: set = set()
        self._sweep_unexported: list = []
        # Imported frontier blobs, decoded lazily: a warm-start probe knows
        # the block it is sweeping, so the (position-independent) constraint
        # indices can be validated and materialized only when actually used.
        self._sweep_frontier_blobs: Dict[str, list] = {}
        # Persistent-store keys answered from an import since the last drain
        # (tracked per store kind); the batch cache uses them to refresh GC
        # touch stamps without probing the other kind's shards.
        self._persistent_keys_used: set = set()
        self._sweep_keys_used: set = set()
        # Derived structure, memoized per canonical constraint tuple so hot
        # requests pay one dict probe: the block decomposition (or None when
        # the set must take the monolithic path) and the renumbered canonical
        # form of each block.
        self._decompositions: Dict[Tuple[Constraint, ...], Optional[Tuple[_Block, ...]]] = {}
        self._sweep_decompositions: Dict[
            Tuple[Constraint, ...], Optional[Tuple[_Block, ...]]
        ] = {}
        self._block_views: Dict[Tuple[Constraint, ...], _Block] = {}
        self._affine: Dict[Constraint, bool] = {}

    # -- canonicalization ----------------------------------------------------

    def canonicalize(self, constraints: ConstraintSet) -> ConstraintSet:
        """Dedupe and deterministically order a constraint set.

        The solution set of a conjunction is invariant under dropping
        duplicates and reordering, so canonical sets measure identically while
        maximizing cache sharing across call sites that accumulate the same
        constraints in different orders.  The canonical form is cached on the
        input instance (and the per-constraint sort keys on the constraints,
        which are shared across sets through common path prefixes), so
        repeated probes do not re-render symbolic values.
        """
        try:
            return constraints._canonical_form
        except AttributeError:
            pass
        unique = []
        seen = set()
        for constraint in constraints:
            if constraint not in seen:
                seen.add(constraint)
                unique.append(constraint)
        unique.sort(key=Constraint.sort_key)
        canonical = ConstraintSet(unique)
        object.__setattr__(constraints, "_canonical_form", canonical)
        return canonical

    # -- measuring -----------------------------------------------------------

    def measure(
        self,
        constraints: ConstraintSet,
        dimension: Optional[int] = None,
        argument: Optional[Interval] = None,
    ) -> MeasureResult:
        """Measure ``constraints`` inside ``[0, 1]^dimension`` through the cache.

        ``dimension`` defaults to ``constraints.dimension()`` (1 + the largest
        sample-variable index), matching the direct use in the AST verifier;
        the lower-bound engine passes the number of variables sampled along
        the path explicitly.
        """
        self.stats.measure_requests += 1
        canonical = self.canonicalize(constraints)
        if dimension is None:
            dimension = canonical.dimension()
        key = (canonical.constraints, dimension, self.options, argument)
        if self.cache_enabled:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
        result = None
        if self.cache_enabled and self._imported:
            # Full-set entries cover both monolithic results and the legacy
            # (pre-block) persistent cache format.
            persistent = self.persistent_key(canonical, dimension, argument)
            result = self._imported.get(persistent)
            if result is not None:
                self.stats.persistent_hits += 1
                self._persistent_keys_used.add(persistent)
                self._cache[key] = result
                return result
        blocks = self._decompose(canonical, argument) if self.block_decomposition else None
        if blocks is not None:
            result = self._measure_blocks(blocks)
            if self.cache_enabled:
                # The product is memoized under the full-set key so repeated
                # identical requests stay one probe, but it is *not* queued
                # for export: persistence stores the block entries, which are
                # what other processes (and other sets) can actually reuse.
                self._cache[key] = result
            return result
        sweep_blocks = self._sweep_decompose(canonical, argument)
        if sweep_blocks is not None:
            with telemetry.span("block", blocks=len(sweep_blocks), dim=dimension):
                result = self._measure_sweep_blocks(sweep_blocks)
            if self.cache_enabled:
                # Like the affine product above: memoized under the full-set
                # key, persisted only as per-block sweep entries.
                self._cache[key] = result
            return result
        if not self.cache_enabled:
            return self._invoke(canonical, dimension, argument)
        if argument is None:
            result = self._derive_complement(canonical, dimension)
        if result is None:
            result = self._invoke(canonical, dimension, argument)
        self._cache[key] = result
        self._unexported.append(key)
        return result

    def _invoke(
        self, canonical: ConstraintSet, dimension: int, argument: Optional[Interval]
    ) -> MeasureResult:
        self.stats.measure_calls += 1
        writer = telemetry.active()
        token = (
            writer.begin(
                "measure", constraints=len(canonical.constraints), dim=dimension
            )
            if writer is not None
            else None
        )
        try:
            return measure_constraints(
                canonical,
                dimension,
                options=self.options,
                registry=self.registry,
                argument=argument,
                stats=self.stats,
            )
        finally:
            if token is not None:
                writer.end(token)

    # -- block decomposition ---------------------------------------------------

    def _decompose(
        self, canonical: ConstraintSet, argument: Optional[Interval]
    ) -> Optional[Tuple[_Block, ...]]:
        """The canonical set's measurable blocks, or ``None`` for monolithic.

        Decomposition is sound for any constraint set (disjoint variable
        groups are independent under the product measure), but it is only
        *bit-reproducible* against the monolithic facade when every block is
        resolved by the exact affine machinery -- a joint subdivision sweep
        of two independent blocks is coarser than the product of their
        per-block sweeps.  So the decomposed path is taken exactly when:

        * no free argument is involved (engine-level or inside a constraint),
        * no constraint carries an unresolved recursion marker (``star``),
        * the sweep is not forced (``prefer_sweep``),
        * every constraint has an affine half-space form, and
        * every constraint mentions at least one sample variable (constant
          constraints are rare and keep their historic monolithic handling).
        """
        if (
            argument is not None
            or not canonical.constraints
            or self.options.prefer_sweep
        ):
            return None
        blocks = self._decompositions.get(canonical.constraints)
        if blocks is None and canonical.constraints not in self._decompositions:
            blocks = self._compute_decomposition(canonical)
            self._decompositions[canonical.constraints] = blocks
        return blocks

    def _compute_decomposition(
        self, canonical: ConstraintSet
    ) -> Optional[Tuple[_Block, ...]]:
        if canonical.contains_argument() or canonical.contains_star():
            return None
        for constraint in canonical:
            if not constraint.variables():
                return None
            if not self._constraint_affine(constraint):
                return None
        return tuple(
            self._block_view(variables, constraints)
            for variables, constraints in canonical.support_blocks()
        )

    def _block_view(
        self, variables: Tuple[int, ...], constraints: Tuple[Constraint, ...]
    ) -> _Block:
        """The renumbered canonical form of one block (memoized per block).

        Renumbering the block's variables to ``0..k-1`` makes the block key
        position-independent: the same one-sample constraint shape produced at
        sample index 0 and at sample index 7 lands on one cache entry.
        """
        view = self._block_views.get(constraints)
        if view is None:
            if variables == tuple(range(len(variables))):
                remapped = ConstraintSet(constraints)  # already in base position
            else:
                remapped = remap_constraints(constraints, variables)
            view = (self.canonicalize(remapped), len(variables))
            self._block_views[constraints] = view
        return view

    def _measure_blocks(self, blocks: Tuple[_Block, ...]) -> MeasureResult:
        """The product of the block measures (the decomposed full-set answer)."""
        if len(blocks) == 1:
            # Preserve the single-block result verbatim (value, flags and
            # provenance) -- the whole set *is* one block in base position.
            return self._measure_block(*blocks[0])
        self.stats.multi_block_sets += 1
        total = Fraction(1)
        exact = True
        methods = set()
        for block, block_dimension in blocks:
            result = self._measure_block(block, block_dimension)
            methods.add(result.method)
            total = total * result.value
            exact = exact and result.exact
            if total == 0:
                break
        method = "+".join(sorted(methods)) if methods else "trivial"
        return MeasureResult(total, exact=exact, lower_bound=not exact, method=method)

    def _measure_block(self, block: ConstraintSet, dimension: int) -> MeasureResult:
        """Measure one renumbered block through the block-level memo table."""
        self.stats.block_requests += 1
        if not self.cache_enabled:
            return self._invoke(block, dimension, None)
        key = (block.constraints, dimension, self.options, None)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.block_cache_hits += 1
            return cached
        result = None
        if self._imported:
            persistent = self.persistent_key(block, dimension, None)
            result = self._imported.get(persistent)
            if result is not None:
                self.stats.persistent_hits += 1
                self._persistent_keys_used.add(persistent)
        if result is None:
            result = self._derive_complement(block, dimension)
        if result is None:
            result = self._invoke(block, dimension, None)
        self._cache[key] = result
        self._unexported.append(key)
        return result

    # -- block-swept non-affine sets -------------------------------------------

    def _sweep_decompose(
        self, canonical: ConstraintSet, argument: Optional[Interval]
    ) -> Optional[Tuple[_Block, ...]]:
        """The swept blocks of a non-affine canonical set, or ``None``.

        The block-sweep path is taken exactly when the set could not go
        through the exact affine decomposition *because of non-affinity*: at
        least one constraint has no half-space form, no free argument or
        unresolved recursion marker is involved (those keep their historic
        monolithic handling), the joint sweep is not forced
        (``prefer_sweep``, the ablation knob), and ``block_sweep`` is on.
        Fully affine sets never land here -- their machinery is exact and
        must stay bit-identical.
        """
        if (
            argument is not None
            or not canonical.constraints
            or not self.options.block_sweep
            or self.options.prefer_sweep
        ):
            return None
        key = canonical.constraints
        if key in self._sweep_decompositions:
            return self._sweep_decompositions[key]
        blocks = self._compute_sweep_decomposition(canonical)
        self._sweep_decompositions[key] = blocks
        return blocks

    def _compute_sweep_decomposition(
        self, canonical: ConstraintSet
    ) -> Optional[Tuple[_Block, ...]]:
        if canonical.contains_argument() or canonical.contains_star():
            return None
        any_nonaffine = False
        for constraint in canonical:
            if not self._constraint_affine(constraint):
                any_nonaffine = True
        if not any_nonaffine:
            return None
        return tuple(
            self._block_view(variables, constraints)
            for variables, constraints in canonical.support_blocks()
        )

    def _constraint_affine(self, constraint: Constraint) -> bool:
        affine = self._affine.get(constraint)
        if affine is None:
            affine = halfspace_from_constraint(constraint, self.registry) is not None
            self._affine[constraint] = affine
        return affine

    def _measure_sweep_blocks(self, blocks: Tuple[_Block, ...]) -> MeasureResult:
        """Interval product of the per-block bounds (the block-sweep answer).

        Disjoint variable blocks are independent under the product measure,
        so ``measure = prod measure_i``; with each block bracketed by a
        certified ``[lower_i, upper_i]`` the product interval
        ``[prod lower_i, prod upper_i]`` brackets the full-set measure.
        """
        if len(blocks) > 1:
            self.stats.multi_block_sets += 1
        lower: Number = Fraction(1)
        upper: Number = Fraction(1)
        methods = set()
        for block, block_dimension in blocks:
            block_lower, block_upper, method = self._sweep_block_bounds(
                block, block_dimension
            )
            methods.add(method)
            lower = lower * block_lower
            upper = upper * block_upper
            if upper == 0:
                # A provably empty block empties the whole product, exactly.
                lower = upper
                break
        exact = lower == upper
        method = "+".join(sorted(methods)) if methods else "trivial"
        return MeasureResult(
            lower,
            exact=exact,
            lower_bound=not exact,
            method=method,
            upper=None if exact else upper,
        )

    def _sweep_block_bounds(
        self, block: ConstraintSet, dimension: int
    ) -> Tuple[Number, Number, str]:
        """Certified ``(lower, upper, method)`` bounds for one block.

        Affine blocks of a mixed set go through the exact (memoized) affine
        machinery when it can answer exactly -- only univariate and polygon
        blocks can, so larger affine blocks skip the attempt.  Every other
        block is swept: the float polytope approximation carries no
        directional guarantee and must never become the lower endpoint of a
        product that claims to be a certified bound.
        """
        if dimension <= 2 and all(
            self._constraint_affine(constraint) for constraint in block
        ):
            result = self._measure_block(block, dimension)
            if result.exact and not result.lower_bound:
                return result.value, result.value, result.method
        sweep = self._sweep_block(block, dimension)
        return sweep.lower, sweep.upper, "sweep"

    def _sweep_block(self, block: ConstraintSet, dimension: int) -> SweepResult:
        """Sweep one renumbered block through the sweep memo table.

        On a full miss, the base sweep warm-starts from the deepest persisted
        frontier of the *same block at a shallower depth budget* when the
        store holds one: the resumed bounds are bit-identical to a
        from-scratch sweep at this engine's budget, so warm-started and cold
        entries are interchangeable everywhere.
        """
        self.stats.block_requests += 1
        if not self.cache_enabled:
            return self._run_block_sweep(block, dimension)
        key = (block.constraints, dimension, self.options)
        cached = self._sweep_cache.get(key)
        if cached is not None:
            self.stats.block_cache_hits += 1
            return cached
        result = None
        if self._sweep_imported:
            persistent = self.persistent_sweep_key(block, dimension)
            result = self._sweep_imported.get(persistent)
            if result is not None:
                self.stats.persistent_hits += 1
                self._sweep_keys_used.add(persistent)
        if result is None:
            resume = self._find_sweep_resume(block, dimension)
            if resume is not None:
                self.stats.sweep_warm_starts += 1
                telemetry.emit("sweep-warm-start", resumed_depth=resume.max_depth)
            result = self._run_block_sweep(block, dimension, resume=resume)
        self._sweep_cache[key] = result
        self._sweep_unexported.append((key, block, dimension))
        return result

    def _find_sweep_resume(
        self, block: ConstraintSet, dimension: int
    ) -> Optional[SweepFrontier]:
        """The deepest usable persisted frontier of ``block``, or ``None``.

        Frontiers only determine the deeper sweep under pure depth budgets,
        so any early-exit knob disables warm-starting outright.  Candidate
        budgets are probed deepest-first by rendering their persistent key
        directly -- the sweep store needs no secondary index.
        """
        options = self.options
        if (
            not self._sweep_frontier_blobs
            or options.sweep_target_gap != 0
            or options.sweep_max_boxes is not None
        ):
            return None
        prefix = self._sweep_key_prefix(block, dimension)
        for depth in range(options.sweep_depth - 1, 0, -1):
            blob = self._sweep_frontier_blobs.get(
                prefix + self._sweep_key_suffix(sweep_depth=depth)
            )
            if blob is None:
                continue
            frontier = decode_frontier(blob, len(block.constraints))
            if frontier is not None and frontier.max_depth == depth:
                return frontier
        return None

    def _run_block_sweep(
        self,
        block: ConstraintSet,
        dimension: int,
        resume: Optional[SweepFrontier] = None,
    ) -> SweepResult:
        self.stats.sweep_blocks += 1
        options = self.options
        # Pure depth budgets collect the frontier so the store can hand it
        # to deeper budgets; early-exit budgets cannot produce a usable one,
        # and with the cache disabled nothing would ever memoize or persist
        # it, so the collection work is skipped outright.
        depth_budget_only = (
            self.cache_enabled
            and options.sweep_target_gap == 0
            and options.sweep_max_boxes is None
        )
        writer = telemetry.active()
        token = (
            writer.begin(
                "sweep",
                constraints=len(block.constraints),
                dim=dimension,
                depth=options.sweep_depth,
                resumed=resume is not None,
            )
            if writer is not None
            else None
        )
        boxes_before = self.stats.sweep_boxes_examined
        batches_before = self.stats.kernel_batches
        kernel_boxes_before = self.stats.kernel_boxes
        # The vectorized classification gets its own nested span so traces
        # show how much of a sweep actually went through the kernel (a set
        # the kernel cannot compile falls back silently and reports 0).
        kernel_token = (
            writer.begin("sweep-kernel", chunk=_SWEEP_KERNEL_CHUNK)
            if writer is not None and options.sweep_kernel
            else None
        )
        try:
            return sweep_measure(
                block,
                dimension,
                max_depth=options.sweep_depth,
                registry=self.registry,
                stats=self.stats,
                target_gap=options.sweep_target_gap,
                max_boxes=options.sweep_max_boxes,
                resume=resume,
                collect_frontier=depth_budget_only,
                use_kernel=options.sweep_kernel,
                contract=options.contract,
            )
        finally:
            if kernel_token is not None:
                writer.end(
                    kernel_token,
                    batches=self.stats.kernel_batches - batches_before,
                    boxes=self.stats.kernel_boxes - kernel_boxes_before,
                )
            if token is not None:
                writer.end(
                    token, boxes=self.stats.sweep_boxes_examined - boxes_before
                )

    # -- the complement rule ---------------------------------------------------

    def _derive_complement(
        self, canonical: ConstraintSet, dimension: int
    ) -> Optional[MeasureResult]:
        """Try to answer ``canonical`` as ``measure(prefix) - measure(partner)``.

        For any constraint ``c`` of the set, ``prefix = set - {c}`` is
        partitioned by ``c`` and its negation, so
        ``measure(set) = measure(prefix) - measure(prefix + not c)`` whenever
        both right-hand measures are known.  The rule is restricted to sets
        whose constraints are all affine in a single variable each: there the
        direct computation is the exact product of interval lengths, so the
        derived value provably equals what :func:`measure_constraints` would
        return and bit-identity between cached and uncached runs is preserved.
        """
        if not self._univariate_affine(canonical):
            return None
        for position, constraint in enumerate(canonical.constraints):
            partner = Constraint(constraint.value, constraint.relation.negation())
            rest = (
                canonical.constraints[:position] + canonical.constraints[position + 1 :]
            )
            partner_result = self._lookup_exact(rest + (partner,), dimension)
            if partner_result is None:
                continue
            prefix_result = self._lookup_exact(rest, dimension)
            if prefix_result is None:
                continue
            value = prefix_result.value - partner_result.value
            if value < 0:  # exact measures cannot go negative; be safe anyway
                value = Fraction(0)
            self.stats.complement_derivations += 1
            return MeasureResult(value, exact=True, lower_bound=False, method="complement")
        return None

    def _lookup_exact(
        self, constraints: Tuple[Constraint, ...], dimension: int
    ) -> Optional[MeasureResult]:
        """A cached exact rational measure for a constraint tuple, or ``None``.

        The empty conjunction needs no cache entry: its solution set is the
        whole cube, of measure exactly 1.
        """
        if not constraints:
            return MeasureResult(Fraction(1), exact=True, lower_bound=False, method="trivial")
        canonical = self.canonicalize(ConstraintSet(constraints))
        # In the univariate-affine regime the measure does not depend on the
        # ambient dimension (unconstrained variables contribute exactly 1), so
        # an entry cached under the set's own dimension is equally good.
        for candidate_dimension in (dimension, canonical.dimension()):
            cached = self._cache.get(
                (canonical.constraints, candidate_dimension, self.options, None)
            )
            if (
                cached is not None
                and cached.exact
                and not cached.lower_bound
                and isinstance(cached.value, Fraction)
            ):
                return cached
        return None

    def _univariate_affine(self, constraints: ConstraintSet) -> bool:
        """True iff every constraint is affine and mentions at most one variable.

        Such sets decompose into univariate blocks that the measure facade
        resolves with the always-exact interval method, which is what makes
        the complement rule's derived values bit-identical to direct ones.
        """
        for constraint in constraints:
            if len(constraint.variables()) > 1:
                return False
            if halfspace_from_constraint(constraint, self.registry) is None:
                return False
        return True

    # -- persistence -----------------------------------------------------------
    #
    # The batch subsystem (:mod:`repro.batch`) persists measure results across
    # processes.  Entries are keyed by a *string* rendering of the canonical
    # cache key: every constraint renders deterministically (the cached
    # ``Constraint.sort_key`` reprs are built from fractions, strings and
    # tuples only), so equal constraint sets produce equal keys in every
    # process, while the persistent store never needs to re-materialise a
    # :class:`~repro.symbolic.constraints.ConstraintSet` from disk -- lookups
    # always start from a live set whose key is recomputed.  Values round-trip
    # exactly: fractions as ``"p/q"`` strings, floats as ``float.hex()``.

    def registry_fingerprint(self) -> str:
        """A stable identifier of the primitive semantics behind the cache."""
        return ",".join(sorted(self.registry.names()))

    def persistent_key(
        self,
        canonical: ConstraintSet,
        dimension: int,
        argument: Optional[Interval] = None,
    ) -> str:
        """The deterministic cross-process cache key of one measure request.

        Every option that can change a computed value is rendered into the
        key -- including the sweep budgets and ``block_sweep``, which change
        emitted non-affine bounds -- so runs under different configurations
        can share one store without ever serving each other's numbers.
        """
        options = self.options
        return "|".join(
            [
                ";".join(c.sort_key() for c in canonical.constraints),
                f"d{dimension}",
                f"o{options.max_hull_dimension}.{options.sweep_depth}.{int(options.prefer_sweep)}"
                f".{int(options.block_sweep)}.{options.sweep_target_gap}"
                f".{options.sweep_max_boxes}"
                # The contractor changes emitted bounds, so it is keyed --
                # but only when enabled, so every pre-contract store entry
                # keeps its historic key.  ``sweep_kernel`` is deliberately
                # absent: kernel results are bit-identical to scalar ones.
                + (".c" if options.contract else ""),
                f"a{argument!r}",
            ]
        )

    def persistent_sweep_key(
        self, block: ConstraintSet, dimension: int, sweep_depth: Optional[int] = None
    ) -> str:
        """The cross-process key of one per-block sweep.

        Only the budget-bearing options participate: a sweep's outcome does
        not depend on ``max_hull_dimension``, ``prefer_sweep`` or
        ``block_sweep``, so entries stay shared across those configurations.
        ``sweep_depth`` overrides the engine's own depth budget -- the
        warm-start probe renders the keys shallower budgets would have
        written under, without needing an engine per budget.
        """
        return self._sweep_key_prefix(block, dimension) + self._sweep_key_suffix(
            sweep_depth
        )

    def _sweep_key_prefix(self, block: ConstraintSet, dimension: int) -> str:
        """The budget-independent part of a sweep key (constraints + dim)."""
        return ";".join(c.sort_key() for c in block.constraints) + f"|d{dimension}"

    def _sweep_key_suffix(self, sweep_depth: Optional[int] = None) -> str:
        """The budget-bearing tail of a sweep key."""
        options = self.options
        if sweep_depth is None:
            sweep_depth = options.sweep_depth
        return (
            f"|s{sweep_depth}.{options.sweep_target_gap}.{options.sweep_max_boxes}"
            # Keyed only when enabled (see :meth:`persistent_key`); the
            # kernel never appears here -- its results are bit-identical.
            + (".c" if options.contract else "")
        )

    def export_cache_entries(self) -> Dict[str, List]:
        """Serialize memoized results added since the last import/export.

        Only entries cached since the previous export are visited (workers
        export after every job, so rescanning the whole memo table would be
        quadratic over a batch), and entries that were themselves imported
        are skipped: the caller merges the export into the store they came
        from, so re-serializing them would only waste work.
        """
        exported: Dict[str, List] = {}
        for constraints, dimension, _options, argument in self._unexported:
            key = self.persistent_key(ConstraintSet(constraints), dimension, argument)
            if key in self._export_skip:
                continue
            result = self._cache.get((constraints, dimension, _options, argument))
            if result is None:
                continue
            encoded = _encode_number(result.value)
            if encoded is None:
                continue
            entry = [encoded, result.exact, result.lower_bound, result.method]
            if result.upper is not None:
                encoded_upper = _encode_number(result.upper)
                if encoded_upper is not None:
                    entry.append(encoded_upper)
            exported[key] = entry
        self._unexported.clear()
        self._export_skip.update(exported)
        return exported

    def import_cache_entries(self, entries: Mapping[str, Iterable]) -> int:
        """Load serialized entries; malformed ones are skipped, not fatal.

        Imported results are consulted on in-memory cache misses (and counted
        as :attr:`PerfStats.persistent_hits`); they are byte-for-byte the
        results a cold engine would compute, so warm and cold runs stay
        bit-identical.
        """
        imported = 0
        for key, entry in entries.items():
            try:
                encoded_value, exact, lower_bound, method = entry[:4]
                value = _decode_number(encoded_value)
                upper = _decode_number(entry[4]) if len(entry) > 4 else None
                if not isinstance(key, str) or not isinstance(method, str):
                    continue
                result = MeasureResult(
                    value,
                    exact=bool(exact),
                    lower_bound=bool(lower_bound),
                    method=method,
                    upper=upper,
                )
            except (TypeError, ValueError, KeyError, IndexError):
                continue
            self._imported[key] = result
            self._export_skip.add(key)
            imported += 1
        return imported

    def export_sweep_entries(self) -> Dict[str, List]:
        """Serialize per-block sweep results added since the last export.

        Mirrors :meth:`export_cache_entries`: only entries memoized since the
        previous import/export are visited, and entries that arrived through
        an import are skipped.
        """
        exported: Dict[str, List] = {}
        for key, block, dimension in self._sweep_unexported:
            persistent = self.persistent_sweep_key(block, dimension)
            if persistent in self._sweep_export_skip:
                continue
            result = self._sweep_cache.get(key)
            if result is None:
                continue
            lower = _encode_number(result.lower)
            undecided = _encode_number(result.undecided)
            if lower is None or undecided is None:
                continue
            entry = [
                lower,
                undecided,
                result.boxes_examined,
                result.evaluations_saved,
                result.early_exit,
                result.heap_peak,
            ]
            # The undecided-box frontier rides along (bounded in size) so a
            # deeper budget in another process can resume instead of
            # re-sweeping from the unit box.
            if (
                result.frontier is not None
                and len(result.frontier.boxes) <= _MAX_PERSISTED_FRONTIER_BOXES
            ):
                encoded_frontier = encode_frontier(result.frontier)
                if encoded_frontier is not None:
                    entry.append(encoded_frontier)
            exported[persistent] = entry
        self._sweep_unexported.clear()
        self._sweep_export_skip.update(exported)
        return exported

    def import_sweep_entries(self, entries: Mapping[str, Iterable]) -> int:
        """Load serialized sweep results; malformed ones are skipped.

        Every field round-trips exactly (the bounds through the tagged
        number codec), so a warm engine's :class:`SweepResult`\\ s -- and
        everything derived from them -- are byte-for-byte what a cold engine
        would compute under the same budget.
        """
        imported = 0
        for key, entry in entries.items():
            try:
                lower_enc, undecided_enc, boxes, saved, early, peak = entry[:6]
                if not isinstance(key, str):
                    continue
                result = SweepResult(
                    _decode_number(lower_enc),
                    _decode_number(undecided_enc),
                    int(boxes),
                    int(saved),
                    bool(early),
                    int(peak),
                )
            except (TypeError, ValueError, KeyError, IndexError):
                continue
            self._sweep_imported[key] = result
            self._sweep_export_skip.add(key)
            # Frontier blobs (entry 7, optional) are kept raw and decoded
            # only if a deeper budget actually warm-starts from them.
            if len(entry) > 6 and isinstance(entry[6], list):
                self._sweep_frontier_blobs[key] = entry[6]
            imported += 1
        return imported

    def drain_persistent_hit_keys(self) -> Tuple[set, set]:
        """The ``(measure, sweep)`` keys answered from an import since the
        last drain.

        The batch cache refreshes the GC touch stamp of these entries when a
        run merges, so entries a fleet still *reads* (but never rewrites)
        do not age out of the store.  The two kinds are kept apart so each
        merge only visits (and locks) its own shards.
        """
        measures, sweeps = self._persistent_keys_used, self._sweep_keys_used
        self._persistent_keys_used = set()
        self._sweep_keys_used = set()
        return measures, sweeps

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        """Drop all memoized results (counters are kept)."""
        self._cache.clear()
        self._unexported.clear()
        self._sweep_cache.clear()
        self._sweep_unexported.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def sweep_cache_size(self) -> int:
        return len(self._sweep_cache)
