"""Measuring sets of traces: the geometric oracles of the reproduction.

Every probability computed in the paper reduces to measuring the solution set
of a conjunction of inequality constraints over sample variables inside the
unit cube ``[0, 1]^m``:

* the lower-bound engine measures the constraint sets of terminating symbolic
  paths (Sec. 3 / Sec. 7.1),
* the AST verifier measures branching probabilities of symbolic execution
  trees, which for the restricted primitive set are volumes of convex
  polytopes (Sec. 7.2 -- the paper uses the analytic formula of Lasserre via
  the `vinci` implementation; we substitute an exact product/univariate path,
  a vertex-enumeration + convex-hull path built on scipy, a certified
  interval-subdivision sweep and a Monte-Carlo cross check).

The single entry point is :func:`repro.geometry.measure.measure_constraints`;
analyses should go through a shared :class:`repro.geometry.engine.MeasureEngine`,
which canonicalizes and memoizes measure results (and records
:class:`repro.geometry.stats.PerfStats` counters) so identical constraint sets
are measured once across the verifier, lower-bound and pastcheck callers.
"""

from repro.geometry.engine import MeasureEngine
from repro.geometry.linear import halfspaces_from_constraints, independent_blocks
from repro.geometry.polytope import polytope_volume
from repro.geometry.stats import PerfStats
from repro.geometry.sweep import SweepResult, sweep_accepted_boxes, sweep_measure
from repro.geometry.montecarlo import monte_carlo_measure
from repro.geometry.measure import MeasureOptions, MeasureResult, measure_constraints

__all__ = [
    "MeasureEngine",
    "MeasureOptions",
    "MeasureResult",
    "PerfStats",
    "SweepResult",
    "halfspaces_from_constraints",
    "independent_blocks",
    "measure_constraints",
    "monte_carlo_measure",
    "polytope_volume",
    "sweep_accepted_boxes",
    "sweep_measure",
]
