"""Monte-Carlo estimation of constraint-set measures.

Used as a cross check for the exact/certified oracles in tests and in the
volume-oracle ablation benchmark; never used where the paper requires a sound
lower bound.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.spcf.primitives import PrimitiveRegistry, default_registry
from repro.symbolic.constraints import ConstraintSet


@dataclass(frozen=True)
class MonteCarloMeasure:
    """An unbiased estimate of a constraint-set measure with its standard error."""

    estimate: float
    stderr: float
    samples: int

    def within(self, value: float, z: float = 4.0) -> bool:
        """True iff ``value`` lies within ``z`` standard errors of the estimate."""
        return abs(value - self.estimate) <= z * max(self.stderr, 1e-9)


def monte_carlo_measure(
    constraints: ConstraintSet,
    dimension: int,
    samples: int = 20_000,
    seed: Optional[int] = 0,
    registry: Optional[PrimitiveRegistry] = None,
    argument: Optional[float] = None,
) -> MonteCarloMeasure:
    """Estimate the measure of the solution set of ``constraints`` in ``[0,1]^dim``."""
    registry = registry or default_registry()
    rng = random.Random(seed)
    if dimension == 0:
        satisfied = constraints.satisfied_by({}, registry, argument)
        return MonteCarloMeasure(1.0 if satisfied else 0.0, 0.0, samples)
    hits = 0
    for _ in range(samples):
        assignment = {index: rng.random() for index in range(dimension)}
        if constraints.satisfied_by(assignment, registry, argument):
            hits += 1
    estimate = hits / samples
    stderr = math.sqrt(max(estimate * (1 - estimate), 1e-12) / samples)
    return MonteCarloMeasure(estimate, stderr, samples)
