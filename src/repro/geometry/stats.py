"""Performance counters for the measuring subsystem.

Every probability in the reproduction bottoms out in a call to
:func:`repro.geometry.measure.measure_constraints`, so a handful of counters
around that entry point gives a faithful, machine-independent picture of how
much geometric work an analysis performed.  The counters are deliberately
deterministic (no wall-clock): the perf benchmark in
``benchmarks/test_perf_measure_cache.py`` asserts on them instead of timings,
so it can run in CI without flakiness.

A single :class:`PerfStats` instance is owned by a
:class:`repro.geometry.engine.MeasureEngine` and threaded through the sweep
and polytope oracles; the CLI's ``--stats`` flag prints :meth:`PerfStats.summary`.

Each field carries its presentation and merge semantics as dataclass field
metadata:

* ``label``   -- the human name used by :meth:`summary` and by the telemetry
  counter reports (``repro trace summarize``), so the printed table and the
  event stream can never drift from the field list;
* ``merge``   -- ``"sum"`` for running totals (the default), ``"max"`` for
  high-water marks, which :meth:`merge` combines by maximum across workers;
* ``rate_of`` -- optional: render this counter with a percentage of the
  named sibling field (the cache hit rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Tuple


def _counter(label: str, merge: str = "sum", rate_of: str = None) -> int:
    metadata = {"label": label, "merge": merge}
    if rate_of is not None:
        metadata["rate_of"] = rate_of
    return field(default=0, metadata=metadata)


@dataclass
class PerfStats:
    """Counters describing the geometric work done by a measure engine."""

    measure_requests: int = _counter("measure requests")
    """Requests made to :meth:`MeasureEngine.measure` (hits included)."""

    measure_calls: int = _counter("measure calls")
    """Actual invocations of :func:`measure_constraints` (cache misses)."""

    cache_hits: int = _counter("cache hits", rate_of="measure_requests")
    """Requests answered from the memo table."""

    persistent_hits: int = _counter("persistent cache hits")
    """Requests answered from an imported (cross-process) persistent cache."""

    complement_derivations: int = _counter("complement derivations")
    """Requests answered exactly via the complement rule (no measuring)."""

    block_requests: int = _counter("block requests")
    """Per-block measure lookups made by the decomposed path (hits included)."""

    block_cache_hits: int = _counter("block cache hits")
    """Block lookups answered from the block-level memo table."""

    block_computations: int = _counter("block computations")
    """Base (innermost) block measure computations actually performed.

    Incremented by :func:`repro.geometry.measure.measure_constraints` once per
    independent block that carries constraints (and once per whole-set sweep
    fallback), in the monolithic and the decomposed regime alike -- so the
    counter compares like for like across engine configurations.
    """

    multi_block_sets: int = _counter("multi-block sets")
    """Decomposed full-set computations that split into >= 2 blocks."""

    sweep_boxes_examined: int = _counter("sweep boxes examined")
    """Boxes popped by the certified subdivision sweep."""

    sweep_evaluations_saved: int = _counter("sweep evals saved")
    """Per-constraint ``box_status`` evaluations skipped by sweep pruning."""

    sweep_blocks: int = _counter("sweep blocks")
    """Base per-block subdivision sweeps actually performed.

    The block-sweep path of the measure engine sweeps each renumbered
    non-affine block at most once per distinct (block, budget); memo, sweep
    and persistent hits answer the rest without touching this counter -- so
    a warm rerun of a sweep-heavy suite reports 0 here.
    """

    sweep_early_exits: int = _counter("sweep early exits")
    """Sweeps stopped early by the ``target_gap`` / ``max_boxes`` budget."""

    sweep_heap_peak: int = _counter("sweep heap peak", merge="max")
    """Largest refinement frontier held by any single adaptive sweep.

    Unlike every other counter this is a high-water mark, not a total:
    :meth:`merge` takes the maximum instead of the sum.
    """

    kernel_batches: int = _counter("kernel batches")
    """Chunks classified by the vectorized sweep kernel.

    Chunking is deterministic (a pure function of the refinement order), so
    this is a zero-tolerance counter like the other work counts.
    """

    kernel_boxes: int = _counter("kernel boxes")
    """Boxes classified through the vectorized kernel (subset of
    :attr:`sweep_boxes_examined`; the remainder went through the scalar
    path or a scalar re-check)."""

    contractions: int = _counter("contractions")
    """Boxes the interval-Newton contractor shrank, decided, or rejected."""

    contracted_volume: float = _counter("contracted volume")
    """Total volume the contractor certifiably removed from the undecided
    gap (a float diagnostic, not a gated counter: it sums rounded
    ``Fraction`` differences)."""

    sweep_warm_starts: int = _counter("sweep warm starts")
    """Base block sweeps resumed from a shallower budget's persisted frontier.

    A warm-started sweep refines only the undecided boxes the shallower
    budget left behind instead of re-bisecting the whole unit box; its
    bounds are bit-identical to a from-scratch sweep at the deeper budget.
    """

    symbolic_steps: int = _counter("symbolic steps")
    """Symbolic reduction steps executed by path exploration.

    Each step of :class:`repro.symbolic.execute.SymbolicStepper` performed
    while enumerating paths counts once -- including the step into each
    branch of a conditional fork.  A resumable exploration session never
    re-executes a step across budgets, which is what the anytime benchmark
    gates against from-scratch re-exploration.
    """

    paths_resumed: int = _counter("paths resumed")
    """Suspended exploration configurations resumed by a deeper budget.

    Counts the configurations an :class:`~repro.symbolic.execute.ExplorationSession`
    picked up mid-path on ``extend`` instead of re-deriving them from the
    root (each one represents a whole re-execution avoided).
    """

    frontier_peak: int = _counter("frontier peak", merge="max")
    """Largest exploration frontier held by any session (high-water mark).

    The number of *live* configurations -- suspended paths a deeper budget
    could still advance, the set ``ExplorationSession.frontier_size``
    reports between extends -- at its peak; like :attr:`sweep_heap_peak` it
    merges by maximum, not by sum.
    """

    frontier_restores: int = _counter("frontier restores")
    """Exploration sessions rebuilt from a persisted frontier.

    Each restore stands for a whole exploration prefix *not* re-executed:
    the decoded session replays its recorded history and resumes stepping
    exactly where the persisted budget stopped (its persisted counters are
    credited to :attr:`symbolic_steps` / :attr:`paths_resumed` /
    :attr:`frontier_peak`, so resumed runs report the same totals as
    uninterrupted ones).
    """

    shards_executed: int = _counter("frontier shards executed")
    """Frontier shards a distributed deepening extended to a deeper budget
    (on workers or inline by the supervisor after exhausted retries)."""

    shards_stolen: int = _counter("frontier shards stolen")
    """Frontier shards claimed by a worker other than the one they were
    assigned to -- the work-stealing half of the distributed scheduler."""

    polytope_calls: int = _counter("polytope invocations")
    """Invocations of the floating-point polytope volume oracle."""

    retries: int = _counter("job retries")
    """Transient job failures (worker death, timeout, OSError) the supervised
    batch runner re-submitted instead of surfacing as final errors."""

    timeouts: int = _counter("job timeouts")
    """Jobs that exceeded the per-job wall-clock budget (``--job-timeout``)."""

    worker_restarts: int = _counter("worker restarts")
    """Worker-pool resurrections after a worker death or a hung job."""

    quarantined_shards: int = _counter("quarantined files")
    """Damaged store files moved to ``<cache-dir>/quarantine/``.

    Counts every file the persistent store refused to read -- torn JSON,
    checksum mismatches -- and set aside for inspection instead of silently
    treating as a cache miss.
    """

    @classmethod
    def field_labels(cls) -> Dict[str, str]:
        """Field name -> human label, straight from the field metadata."""
        return {f.name: f.metadata["label"] for f in fields(cls)}

    @classmethod
    def high_water_marks(cls) -> Tuple[str, ...]:
        """The fields that merge by maximum instead of summing."""
        return tuple(f.name for f in fields(cls) if f.metadata["merge"] == "max")

    # Kept as a property for backward compatibility with callers that read
    # the old class attribute; the field metadata is the source of truth.
    @property
    def _HIGH_WATER_MARKS(self) -> Tuple[str, ...]:  # noqa: N802
        return self.high_water_marks()

    def merge(self, other: "PerfStats") -> None:
        """Add another instance's counters into this one.

        Fields whose metadata says ``merge: "max"`` (the high-water marks
        ``sweep_heap_peak`` and ``frontier_peak``) combine by maximum; every
        other field is a running total and merges by addition.
        """
        for spec in fields(self):
            ours, theirs = getattr(self, spec.name), getattr(other, spec.name)
            if spec.metadata["merge"] == "max":
                setattr(self, spec.name, max(ours, theirs))
            else:
                setattr(self, spec.name, ours + theirs)

    def reset(self) -> None:
        for spec in fields(self):
            setattr(self, spec.name, 0)

    def as_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def summary(self) -> str:
        """A short human-readable report (printed by the CLI's ``--stats``).

        Rendered entirely from the field metadata, so a new counter shows up
        here (and in ``repro trace summarize``) the moment it is declared.
        """
        specs = fields(self)
        pad = max(len(spec.metadata["label"]) for spec in specs)
        lines = []
        for spec in specs:
            value = getattr(self, spec.name)
            rendered = f"{spec.metadata['label']:<{pad}}: {value}"
            rate_of = spec.metadata.get("rate_of")
            if rate_of is not None:
                denominator = getattr(self, rate_of)
                rate = (value / denominator * 100) if denominator else 0.0
                rendered += f" ({rate:.1f}%)"
            lines.append(rendered)
        return "\n".join(lines)
