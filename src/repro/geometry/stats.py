"""Performance counters for the measuring subsystem.

Every probability in the reproduction bottoms out in a call to
:func:`repro.geometry.measure.measure_constraints`, so a handful of counters
around that entry point gives a faithful, machine-independent picture of how
much geometric work an analysis performed.  The counters are deliberately
deterministic (no wall-clock): the perf benchmark in
``benchmarks/test_perf_measure_cache.py`` asserts on them instead of timings,
so it can run in CI without flakiness.

A single :class:`PerfStats` instance is owned by a
:class:`repro.geometry.engine.MeasureEngine` and threaded through the sweep
and polytope oracles; the CLI's ``--stats`` flag prints :meth:`PerfStats.summary`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfStats:
    """Counters describing the geometric work done by a measure engine."""

    measure_requests: int = 0
    """Requests made to :meth:`MeasureEngine.measure` (hits included)."""

    measure_calls: int = 0
    """Actual invocations of :func:`measure_constraints` (cache misses)."""

    cache_hits: int = 0
    """Requests answered from the memo table."""

    persistent_hits: int = 0
    """Requests answered from an imported (cross-process) persistent cache."""

    complement_derivations: int = 0
    """Requests answered exactly via the complement rule (no measuring)."""

    block_requests: int = 0
    """Per-block measure lookups made by the decomposed path (hits included)."""

    block_cache_hits: int = 0
    """Block lookups answered from the block-level memo table."""

    block_computations: int = 0
    """Base (innermost) block measure computations actually performed.

    Incremented by :func:`repro.geometry.measure.measure_constraints` once per
    independent block that carries constraints (and once per whole-set sweep
    fallback), in the monolithic and the decomposed regime alike -- so the
    counter compares like for like across engine configurations.
    """

    multi_block_sets: int = 0
    """Decomposed full-set computations that split into >= 2 blocks."""

    sweep_boxes_examined: int = 0
    """Boxes popped by the certified subdivision sweep."""

    sweep_evaluations_saved: int = 0
    """Per-constraint ``box_status`` evaluations skipped by sweep pruning."""

    sweep_blocks: int = 0
    """Base per-block subdivision sweeps actually performed.

    The block-sweep path of the measure engine sweeps each renumbered
    non-affine block at most once per distinct (block, budget); memo, sweep
    and persistent hits answer the rest without touching this counter -- so
    a warm rerun of a sweep-heavy suite reports 0 here.
    """

    sweep_early_exits: int = 0
    """Sweeps stopped early by the ``target_gap`` / ``max_boxes`` budget."""

    sweep_heap_peak: int = 0
    """Largest refinement frontier held by any single adaptive sweep.

    Unlike every other counter this is a high-water mark, not a total:
    :meth:`merge` takes the maximum instead of the sum.
    """

    sweep_warm_starts: int = 0
    """Base block sweeps resumed from a shallower budget's persisted frontier.

    A warm-started sweep refines only the undecided boxes the shallower
    budget left behind instead of re-bisecting the whole unit box; its
    bounds are bit-identical to a from-scratch sweep at the deeper budget.
    """

    symbolic_steps: int = 0
    """Symbolic reduction steps executed by path exploration.

    Each step of :class:`repro.symbolic.execute.SymbolicStepper` performed
    while enumerating paths counts once -- including the step into each
    branch of a conditional fork.  A resumable exploration session never
    re-executes a step across budgets, which is what the anytime benchmark
    gates against from-scratch re-exploration.
    """

    paths_resumed: int = 0
    """Suspended exploration configurations resumed by a deeper budget.

    Counts the configurations an :class:`~repro.symbolic.execute.ExplorationSession`
    picked up mid-path on ``extend`` instead of re-deriving them from the
    root (each one represents a whole re-execution avoided).
    """

    frontier_peak: int = 0
    """Largest exploration frontier held by any session (high-water mark).

    The number of *live* configurations -- suspended paths a deeper budget
    could still advance, the set ``ExplorationSession.frontier_size``
    reports between extends -- at its peak; like :attr:`sweep_heap_peak` it
    merges by maximum, not by sum.
    """

    polytope_calls: int = 0
    """Invocations of the floating-point polytope volume oracle."""

    retries: int = 0
    """Transient job failures (worker death, timeout, OSError) the supervised
    batch runner re-submitted instead of surfacing as final errors."""

    timeouts: int = 0
    """Jobs that exceeded the per-job wall-clock budget (``--job-timeout``)."""

    worker_restarts: int = 0
    """Worker-pool resurrections after a worker death or a hung job."""

    quarantined_shards: int = 0
    """Damaged store files moved to ``<cache-dir>/quarantine/``.

    Counts every file the persistent store refused to read -- torn JSON,
    checksum mismatches -- and set aside for inspection instead of silently
    treating as a cache miss.
    """

    _HIGH_WATER_MARKS = ("sweep_heap_peak", "frontier_peak")

    def merge(self, other: "PerfStats") -> None:
        """Add another instance's counters into this one.

        ``sweep_heap_peak`` and ``frontier_peak`` are high-water marks and
        merge by maximum; every other field is a running total and merges by
        addition.
        """
        for field in fields(self):
            ours, theirs = getattr(self, field.name), getattr(other, field.name)
            if field.name in self._HIGH_WATER_MARKS:
                setattr(self, field.name, max(ours, theirs))
            else:
                setattr(self, field.name, ours + theirs)

    def reset(self) -> None:
        for field in fields(self):
            setattr(self, field.name, 0)

    def as_dict(self) -> dict:
        return {field.name: getattr(self, field.name) for field in fields(self)}

    def summary(self) -> str:
        """A short human-readable report (printed by the CLI's ``--stats``)."""
        requests = self.measure_requests
        hit_rate = (self.cache_hits / requests * 100) if requests else 0.0
        return "\n".join(
            [
                f"measure requests      : {self.measure_requests}",
                f"measure calls         : {self.measure_calls}",
                f"cache hits            : {self.cache_hits} ({hit_rate:.1f}%)",
                f"persistent cache hits : {self.persistent_hits}",
                f"complement derivations: {self.complement_derivations}",
                f"block requests        : {self.block_requests}",
                f"block cache hits      : {self.block_cache_hits}",
                f"block computations    : {self.block_computations}",
                f"multi-block sets      : {self.multi_block_sets}",
                f"sweep boxes examined  : {self.sweep_boxes_examined}",
                f"sweep evals saved     : {self.sweep_evaluations_saved}",
                f"sweep blocks          : {self.sweep_blocks}",
                f"sweep early exits     : {self.sweep_early_exits}",
                f"sweep heap peak       : {self.sweep_heap_peak}",
                f"sweep warm starts     : {self.sweep_warm_starts}",
                f"symbolic steps        : {self.symbolic_steps}",
                f"paths resumed         : {self.paths_resumed}",
                f"frontier peak         : {self.frontier_peak}",
                f"polytope invocations  : {self.polytope_calls}",
                f"job retries           : {self.retries}",
                f"job timeouts          : {self.timeouts}",
                f"worker restarts       : {self.worker_restarts}",
                f"quarantined files     : {self.quarantined_shards}",
            ]
        )
