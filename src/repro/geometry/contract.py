"""Interval-Newton / monotonicity box contraction for the adaptive sweep.

Plain interval evaluation decides a box only when the whole image interval
clears the constraint boundary, so the sweep spends its budget bisecting
towards boundaries at midpoint resolution.  This module tightens that:
for a box the classifier left *undecided*, it

* **decides** the box outright when every remaining constraint is monotone
  over it (forward-mode interval AD yields sign-constant partial
  derivative enclosures) and the constraint's *worst corner* -- the single
  point where a monotone function is extremal -- can be decided by exact
  point evaluation, and
* **shaves** certifiably-violating slabs off the box with an
  interval-Newton bound: if ``h`` (the constraint's violation margin) is
  nondecreasing in ``x_j`` with derivative enclosure ``[d_lo, d_hi]``,
  ``d_lo > 0``, and the ``x_j = lo`` face evaluates to at least
  ``h_lo``, then every point with

      ``x_j  >  lo - h_lo / d_lo``

  satisfies ``h > 0`` -- a certified violation -- and the slab above a
  dyadic cut point past that threshold is discarded.  Cut points are
  dyadic fractions of the box width, so contracted boxes keep exact
  ``Fraction`` endpoints and remain frontier-encodable.

Everything is computed in exact rational arithmetic on top of the sound
scalar interval extensions (float endpoints convert to ``Fraction``
exactly), so a discarded slab or a decided box is *certified*: contraction
can only move volume from *undecided* to *accepted* or *rejected*, never
the other way -- bounds tighten, they never loosen.  Because accepted
volumes and refinement order change, the feature is flag-gated
(``MeasureOptions.contract``, default off) and contract-enabled results
persist under distinct store keys.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.intervals.box import Box
from repro.intervals.interval import Interval
from repro.spcf.primitives import PrimitiveRegistry
from repro.symbolic.constraints import Constraint, Relation
from repro.symbolic.values import ArgVal, ConstVal, PrimVal, SampleVar, SymVal

__all__ = ["contract_box"]

_ROUNDS = 2
"""Contraction passes per box; a pass that changes nothing ends the loop."""

_GRID = 8
"""Dyadic resolution of shave cuts: candidate cut points are ``lo + width
* m/8``, keeping contracted endpoints exact and cheaply encodable."""

Pair = Tuple[Fraction, Fraction]


class _Unsupported(Exception):
    """The constraint's value has no sound derivative enclosure here."""


def _exact(value) -> Fraction:
    """Exact ``Fraction`` view of an interval endpoint (floats are binary
    rationals, so this never rounds)."""
    return value if isinstance(value, Fraction) else Fraction(value)


def _iadd(a: Pair, b: Pair) -> Pair:
    return a[0] + b[0], a[1] + b[1]


def _imul(a: Pair, b: Pair) -> Pair:
    products = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return min(products), max(products)


def _ineg(a: Pair) -> Pair:
    return -a[1], -a[0]


_ZERO: Pair = (Fraction(0), Fraction(0))


def _differentiate(
    value: SymVal,
    dims: Sequence[int],
    intervals: Sequence[Interval],
    registry: PrimitiveRegistry,
    argument: Optional[Interval],
) -> Optional[List[Pair]]:
    """Sound interval enclosures of ``d value / d x_j`` for each ``j`` in
    ``dims``, or ``None`` when no enclosure is available (non-smooth
    primitive, ``star``, a ``log`` whose argument may be non-positive).

    Forward-mode interval AD with exact rational arithmetic, walked with an
    explicit stack (value trees grow with the step budget) and memoized on
    node identity so shared sub-expressions differentiate once.
    """
    positions = {dim: position for position, dim in enumerate(dims)}
    zeros = tuple(_ZERO for _ in dims)
    memo: Dict[int, Tuple[Pair, Tuple[Pair, ...]]] = {}

    def result_for(node: SymVal) -> Tuple[Pair, Tuple[Pair, ...]]:
        return memo[id(node)]

    try:
        work: List[Tuple[str, SymVal]] = [("visit", value)]
        while work:
            tag, node = work.pop()
            if id(node) in memo:
                continue
            if tag == "emit":
                bounds = []
                for arg in node.args:
                    pair, _ = result_for(arg)
                    bounds.append(pair)
                op = node.op
                if op in ("add", "sub", "neg"):
                    prim = registry[op].on_box(*bounds)
                    pair = (_exact(prim[0]), _exact(prim[1]))
                    if op == "add":
                        derivs = tuple(
                            _iadd(result_for(node.args[0])[1][k], result_for(node.args[1])[1][k])
                            for k in range(len(dims))
                        )
                    elif op == "sub":
                        derivs = tuple(
                            _iadd(
                                result_for(node.args[0])[1][k],
                                _ineg(result_for(node.args[1])[1][k]),
                            )
                            for k in range(len(dims))
                        )
                    else:
                        derivs = tuple(_ineg(d) for d in result_for(node.args[0])[1])
                elif op == "mul":
                    (va, da), (vb, db) = result_for(node.args[0]), result_for(node.args[1])
                    pair = _imul(va, vb)
                    derivs = tuple(
                        _iadd(_imul(da[k], vb), _imul(va, db[k]))
                        for k in range(len(dims))
                    )
                elif op == "exp":
                    va, da = result_for(node.args[0])
                    prim = registry["exp"].on_box(va)
                    pair = (_exact(prim[0]), _exact(prim[1]))
                    derivs = tuple(_imul(pair, d) for d in da)
                elif op == "sig":
                    va, da = result_for(node.args[0])
                    prim = registry["sig"].on_box(va)
                    pair = (_exact(prim[0]), _exact(prim[1]))
                    slope = _imul(pair, (1 - pair[1], 1 - pair[0]))
                    derivs = tuple(_imul(slope, d) for d in da)
                elif op == "log":
                    va, da = result_for(node.args[0])
                    if va[0] <= 0:
                        raise _Unsupported("log")
                    prim = registry["log"].on_box(va)
                    pair = (_exact(prim[0]), _exact(prim[1]))
                    reciprocal = (1 / va[1], 1 / va[0])
                    derivs = tuple(_imul(reciprocal, d) for d in da)
                else:  # min / max / abs are non-smooth; anything else unknown
                    raise _Unsupported(op)
                memo[id(node)] = (pair, derivs)
                continue
            if isinstance(node, PrimVal):
                work.append(("emit", node))
                for arg in reversed(node.args):
                    work.append(("visit", arg))
            elif isinstance(node, SampleVar):
                if node.index < len(intervals):
                    interval = intervals[node.index]
                    pair = (_exact(interval.lo), _exact(interval.hi))
                else:
                    pair = (Fraction(0), Fraction(1))
                position = positions.get(node.index)
                if position is None:
                    derivs = zeros
                else:
                    derivs = tuple(
                        (Fraction(1), Fraction(1)) if k == position else _ZERO
                        for k in range(len(dims))
                    )
                memo[id(node)] = (pair, derivs)
            elif isinstance(node, ConstVal):
                exact = _exact(node.value)
                memo[id(node)] = ((exact, exact), zeros)
            elif isinstance(node, ArgVal):
                if argument is None:
                    raise _Unsupported("argument")
                memo[id(node)] = (
                    (_exact(argument.lo), _exact(argument.hi)),
                    zeros,
                )
            else:  # StarVal and future forms
                raise _Unsupported(type(node).__name__)
        return list(result_for(value)[1])
    except (_Unsupported, ValueError, OverflowError, ZeroDivisionError):
        return None


def _violation_sign(relation: Relation) -> int:
    """``s`` such that ``s * value > 0`` certifies a violated constraint.

    Mirrors the branch structure of ``Constraint.box_status`` (anything
    that is not ``GT``/``GE`` is an upper-bound relation) so the two can
    never disagree about which corner is the worst one.
    """
    return -1 if relation in (Relation.GT, Relation.GE) else 1


def _face_pair(
    constraint: Constraint,
    intervals: Sequence[Interval],
    dimension: int,
    face: Interval,
    registry: PrimitiveRegistry,
    argument: Optional[Interval],
) -> Optional[Pair]:
    """Exact rational bounds of the constraint's value over one box face."""
    mapping = {index: interval for index, interval in enumerate(intervals)}
    mapping[dimension] = face
    try:
        bounds = constraint.value.interval_evaluate(mapping, registry, argument)
    except (ValueError, OverflowError):
        return None
    return _exact(bounds.lo), _exact(bounds.hi)


def _corner_status(
    constraint: Constraint,
    dims: Sequence[int],
    derivs: Sequence[Pair],
    intervals: Sequence[Interval],
    registry: PrimitiveRegistry,
    argument: Optional[Interval],
) -> Optional[bool]:
    """Decide the constraint over the whole box via its extremal corners.

    Only applicable when every dimension's derivative enclosure has
    constant sign: the value is then extremal at two opposite corners, and
    a certified verdict at the *worst* corner extends to the whole box.
    """
    signs = []
    for d_lo, d_hi in derivs:
        if d_lo >= 0:
            signs.append(1)
        elif d_hi <= 0:
            signs.append(-1)
        else:
            return None
    maximal: Dict[int, Interval] = {}
    minimal: Dict[int, Interval] = {}
    for dim, sign in zip(dims, signs):
        interval = intervals[dim] if dim < len(intervals) else Interval(0, 1)
        maximal[dim] = Interval.point(interval.hi if sign > 0 else interval.lo)
        minimal[dim] = Interval.point(interval.lo if sign > 0 else interval.hi)
    if _violation_sign(constraint.relation) > 0:
        worst, best = maximal, minimal  # LE/LT: hardest where the value is largest
    else:
        worst, best = minimal, maximal
    try:
        if constraint.box_status(worst, registry, argument) is True:
            return True
        if constraint.box_status(best, registry, argument) is False:
            return False
    except (ValueError, OverflowError):
        return None
    return None


def contract_box(
    box: Box,
    active: Tuple[Constraint, ...],
    registry: PrimitiveRegistry,
    argument: Optional[Interval],
) -> Optional[Tuple[Box, Tuple[Constraint, ...]]]:
    """Contract an undecided box against its undecided constraints.

    Returns ``None`` when the box *certifiably violates* some constraint
    (the caller rejects it), and otherwise the possibly-shrunk box together
    with the constraints still undecided on it (in their original order;
    empty means every constraint is now proven and the caller accepts the
    contracted box).  The discarded volume -- shaved slabs, or the whole
    box on rejection -- is always certified non-solution.
    """
    intervals = list(box.intervals)
    remaining = list(active)
    for _ in range(_ROUNDS):
        changed = False
        for constraint in tuple(remaining):
            dims = sorted(constraint.variables())
            if not dims:
                continue
            derivs = _differentiate(
                constraint.value, dims, intervals, registry, argument
            )
            if derivs is None:
                continue
            status = _corner_status(
                constraint, dims, derivs, intervals, registry, argument
            )
            if status is True:
                remaining.remove(constraint)
                changed = True
                continue
            if status is False:
                return None
            sign = _violation_sign(constraint.relation)
            for dim, (d_lo, d_hi) in zip(dims, derivs):
                if dim >= len(intervals):
                    continue
                interval = intervals[dim]
                width = _exact(interval.hi) - _exact(interval.lo)
                if width <= 0:
                    continue
                # Derivative of the violation margin h = sign * value.
                h_lo = d_lo if sign > 0 else -d_hi
                h_hi = d_hi if sign > 0 else -d_lo
                cut = None
                if h_lo > 0:
                    # h nondecreasing in this dimension: violation certain
                    # above lo - h(lo-face)_lo / h_lo; shave the high slab.
                    face = _face_pair(
                        constraint,
                        intervals,
                        dim,
                        Interval.point(interval.lo),
                        registry,
                        argument,
                    )
                    if face is None:
                        continue
                    face_lo = face[0] if sign > 0 else -face[1]
                    if face_lo > 0:
                        return None  # even the mildest face violates
                    threshold = _exact(interval.lo) - face_lo / h_lo
                    if threshold < _exact(interval.hi):
                        steps = math.ceil(
                            (threshold - _exact(interval.lo)) / width * _GRID
                        )
                        if 1 <= steps <= _GRID - 1:
                            cut = _exact(interval.lo) + width * Fraction(steps, _GRID)
                            intervals[dim] = Interval(interval.lo, cut)
                elif h_hi < 0:
                    # h nonincreasing: violation certain below the mirrored
                    # threshold; shave the low slab.
                    face = _face_pair(
                        constraint,
                        intervals,
                        dim,
                        Interval.point(interval.hi),
                        registry,
                        argument,
                    )
                    if face is None:
                        continue
                    face_lo = face[0] if sign > 0 else -face[1]
                    if face_lo > 0:
                        return None
                    threshold = _exact(interval.hi) + face_lo / h_hi
                    if threshold > _exact(interval.lo):
                        steps = math.floor(
                            (threshold - _exact(interval.lo)) / width * _GRID
                        )
                        if 1 <= steps <= _GRID - 1:
                            cut = _exact(interval.lo) + width * Fraction(steps, _GRID)
                            intervals[dim] = Interval(cut, interval.hi)
                if cut is not None:
                    changed = True
        if not changed:
            break
    return Box(intervals), tuple(remaining)
