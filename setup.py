"""Package metadata for the reproduction.

The execution environment has no ``wheel`` package and no network access, so
PEP 660 editable installs (which build a wheel) are unavailable.  This classic
``setup.py`` lets ``python setup.py develop`` / ``pip install -e .
--no-build-isolation`` fall back to the egg-link mechanism while still
declaring real metadata.

``numpy`` is a hard install requirement since the vectorized sweep kernel
(:mod:`repro.geometry.kernel`) evaluates interval extensions over chunks of
boxes as numpy array programs.  Environments that cannot satisfy it still
import fine -- the kernel module guards its import and the sweep falls back
to the scalar loop -- but a source install should pull numpy in.
"""

from setuptools import find_packages, setup

setup(
    name="repro-spcf-lower-bounds",
    version="0.9.0",
    description=(
        "Certified lower bounds on termination probability of SPCF programs "
        "(reproduction of Beutner & Ong, PLDI 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=[
        "numpy",
    ],
    extras_require={
        "dev": [
            "scipy",
            "hypothesis",
            "pytest",
            "pytest-benchmark",
            "ruff",
        ],
    },
)
