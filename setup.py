"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access, so
PEP 660 editable installs (which build a wheel) are unavailable.  This shim
lets ``python setup.py develop`` / ``pip install -e . --no-build-isolation``
fall back to the classic egg-link mechanism.
"""

from setuptools import setup

setup()
